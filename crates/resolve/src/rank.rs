use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ctxpref_context::{DistanceKind, ExtendedContextDescriptor};
use ctxpref_profile::ProfileError;
use ctxpref_relation::{RankedResults, Relation, ScoreCombiner, ScoredTuple};

use crate::resolver::{ContextResolver, MatchOutcome, StateResolution, TieBreak};
use crate::store::PreferenceStore;

/// A totally ordered f64 (by `total_cmp`) for use in the top-k heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The answer of a contextual preference query: the ranked tuples plus
/// the resolution trace — the paper's usability study leans on
/// *traceability* ("users can track back which preferences were used to
/// attain the results").
#[derive(Debug, Clone)]
pub struct RankedQuery {
    /// Ranked tuples of the relation, best first, duplicates combined.
    pub results: RankedResults,
    /// How each query context state was resolved.
    pub resolutions: Vec<StateResolution>,
}

impl RankedQuery {
    /// Total cells accessed across all state resolutions.
    pub fn total_cells(&self) -> u64 {
        self.resolutions.iter().map(|r| r.cells).sum()
    }

    /// True iff no query state found any applicable preference.
    pub fn is_non_contextual(&self) -> bool {
        self.resolutions
            .iter()
            .all(|r| r.outcome == MatchOutcome::NoMatch)
    }
}

/// Top-k variant of `Rank_CS`: resolve the query's context states, then
/// evaluate the selected preference entries in descending-score order,
/// stopping as soon as the top `k` tuples cannot change.
///
/// With the `Max` combiner, a tuple's final score is the maximum score
/// of any entry selecting it, so once `k` distinct tuples have been
/// collected and the next entry's score is no greater than the k-th
/// collected score, no later entry can alter the top `k` (it could only
/// add tuples at or below the threshold, or re-select already-collected
/// tuples without raising their max). Ties with the k-th score are kept,
/// preserving [`RankedResults::top_k_with_ties`] semantics.
///
/// Only the `Max` combiner admits this cutoff; other combiners fall
/// back to the full [`rank_cs`].
pub fn rank_cs_topk<S: PreferenceStore + ?Sized>(
    store: &S,
    relation: &Relation,
    ecod: &ExtendedContextDescriptor,
    kind: DistanceKind,
    tie: TieBreak,
    combiner: ScoreCombiner,
    k: usize,
) -> Result<RankedQuery, ProfileError> {
    if combiner != ScoreCombiner::Max || k == 0 {
        return rank_cs(store, relation, ecod, kind, tie, combiner);
    }
    let resolver = ContextResolver::new(store, kind, tie);
    let resolutions = resolver.resolve(ecod)?;
    // Gather entries across all selected candidates, highest score first.
    let mut entries: Vec<&ctxpref_profile::LeafEntry> = resolutions
        .iter()
        .flat_map(|res| res.selected.iter())
        .flat_map(|cand| store.entries(cand.leaf))
        .collect();
    entries.sort_by(|a, b| b.score.total_cmp(&a.score));

    let mut best: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
    // Min-heap of the k highest tuple scores seen so far; its root is the
    // running k-th score. Entries arrive in descending score order, so a
    // tuple's score is fixed the first time it is selected — the heap
    // never needs updating, only bounded pushes.
    let mut topk: BinaryHeap<Reverse<TotalF64>> = BinaryHeap::with_capacity(k + 1);
    let mut kth_score = f64::NEG_INFINITY;
    for entry in entries {
        if best.len() >= k && entry.score < kth_score {
            break; // no later (lower-scored) entry can affect the top k
        }
        let pred = entry.clause.predicate();
        for tuple_index in relation.select(&pred) {
            match best.entry(tuple_index) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(entry.score);
                    topk.push(Reverse(TotalF64(entry.score)));
                    if topk.len() > k {
                        topk.pop();
                    }
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    // Descending entry order: the first selection already
                    // recorded this tuple's maximum.
                    debug_assert!(*slot.get() >= entry.score);
                }
            }
        }
        if best.len() >= k {
            kth_score = topk.peek().expect("k ≥ 1 and best.len() ≥ k").0 .0;
        }
    }
    let raw = best
        .into_iter()
        .map(|(tuple_index, score)| ScoredTuple { tuple_index, score });
    let mut results = RankedResults::from_scores(raw, ScoreCombiner::Max);
    // Trim to the top-k-with-ties frontier so callers see exactly what a
    // full ranking would have produced for the first k positions.
    let keep = results.top_k_with_ties(k).to_vec();
    results = RankedResults::from_scores(keep, ScoreCombiner::Max);
    Ok(RankedQuery {
        results,
        resolutions,
    })
}

/// `Rank_CS` (Algorithm 2): resolve every context state of the query's
/// extended descriptor, turn the selected preference entries into
/// selections `σ_{A θ a}(R)`, annotate the selected tuples with the
/// entries' interest scores, and merge duplicates with `combiner`.
pub fn rank_cs<S: PreferenceStore + ?Sized>(
    store: &S,
    relation: &Relation,
    ecod: &ExtendedContextDescriptor,
    kind: DistanceKind,
    tie: TieBreak,
    combiner: ScoreCombiner,
) -> Result<RankedQuery, ProfileError> {
    let resolver = ContextResolver::new(store, kind, tie);
    let resolutions = resolver.resolve(ecod)?;
    let mut raw: Vec<ScoredTuple> = Vec::new();
    for res in &resolutions {
        select_for_state(store, relation, res, &mut raw);
    }
    Ok(RankedQuery {
        results: RankedResults::from_scores(raw, combiner),
        resolutions,
    })
}

/// The selection half of `Rank_CS` for one resolved state: turn the
/// selected preference entries into `σ_{A θ a}(R)` selections, scored.
fn select_for_state<S: PreferenceStore + ?Sized>(
    store: &S,
    relation: &Relation,
    res: &StateResolution,
    raw: &mut Vec<ScoredTuple>,
) {
    for cand in &res.selected {
        for entry in store.entries(cand.leaf) {
            let pred = entry.clause.predicate();
            for tuple_index in relation.select(&pred) {
                raw.push(ScoredTuple {
                    tuple_index,
                    score: entry.score,
                });
            }
        }
    }
}

/// `Rank_CS` parallelized across the query's context states: each
/// state's resolution + selection is independent, so the states of an
/// exploratory (disjunctive) descriptor fan out over up to
/// `max_threads` scoped threads and the per-state scored tuples are
/// merged with `combiner` exactly as [`rank_cs`] would. Single-state
/// queries (and `max_threads < 2`) run serially — the result is
/// identical either way.
pub fn rank_cs_parallel<S: PreferenceStore + Sync + ?Sized>(
    store: &S,
    relation: &Relation,
    ecod: &ExtendedContextDescriptor,
    kind: DistanceKind,
    tie: TieBreak,
    combiner: ScoreCombiner,
    max_threads: usize,
) -> Result<RankedQuery, ProfileError> {
    let states = ecod.states(store.env())?;
    if states.len() < 2 || max_threads < 2 {
        return rank_cs(store, relation, ecod, kind, tie, combiner);
    }
    let resolver = ContextResolver::new(store, kind, tie);
    let threads = max_threads.min(states.len());
    // Strided assignment: thread t takes states t, t+threads, … — then
    // results are stitched back in state order so the merged ranking is
    // bit-identical to the serial one.
    let mut per_state: Vec<Option<(StateResolution, Vec<ScoredTuple>)>> =
        (0..states.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let states = &states;
            let resolver = &resolver;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, StateResolution, Vec<ScoredTuple>)> = Vec::new();
                for (i, state) in states.iter().enumerate().skip(t).step_by(threads) {
                    let res = resolver.resolve_state(state);
                    let mut raw = Vec::new();
                    select_for_state(store, relation, &res, &mut raw);
                    out.push((i, res, raw));
                }
                out
            }));
        }
        for handle in handles {
            for (i, res, raw) in handle.join().expect("rank_cs worker panicked") {
                per_state[i] = Some((res, raw));
            }
        }
    });
    let mut resolutions = Vec::with_capacity(states.len());
    let mut raw: Vec<ScoredTuple> = Vec::new();
    for slot in per_state {
        let (res, mut tuples) = slot.expect("every state resolved");
        resolutions.push(res);
        raw.append(&mut tuples);
    }
    Ok(RankedQuery {
        results: RankedResults::from_scores(raw, combiner),
        resolutions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::{parse_descriptor, parse_extended_descriptor, ContextEnvironment};
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_profile::{
        AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, SerialStore,
    };
    use ctxpref_relation::{AttrType, Schema, Value};

    fn env() -> ContextEnvironment {
        ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap()
    }

    fn poi() -> Relation {
        let schema = Schema::new(&[
            ("name", AttrType::Str),
            ("type", AttrType::Str),
            ("cost", AttrType::Float),
        ])
        .unwrap();
        let mut r = Relation::new("poi", schema);
        for (n, t, c) in [
            ("Acropolis", "monument", 12.0),
            ("Benaki", "museum", 9.0),
            ("Mikro", "brewery", 0.0),
            ("Zythos", "brewery", 5.0),
            ("Attica Zoo", "zoo", 16.0),
        ] {
            r.insert(vec![n.into(), t.into(), c.into()]).unwrap();
        }
        r
    }

    fn profile(env: &ContextEnvironment, rel: &Relation) -> Profile {
        let ty = rel.schema().attr("type").unwrap();
        let name = rel.schema().attr("name").unwrap();
        let mut p = Profile::new(env.clone());
        for (cod, attr, value, score) in [
            ("company = friends", ty, "brewery", 0.9),
            ("weather = warm", name, "Acropolis", 0.8),
            ("weather = cold", ty, "museum", 0.7),
            ("weather = warm and company = family", ty, "zoo", 0.95),
        ] {
            p.insert(
                ContextualPreference::new(
                    parse_descriptor(env, cod).unwrap(),
                    AttributeClause::eq(attr, Value::str(value)),
                    score,
                )
                .unwrap(),
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn ranks_by_matched_preferences() {
        let env = env();
        let rel = poi();
        let p = profile(&env, &rel);
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        // Current context: warm with friends. Matching stored states:
        // exact? (warm, friends) not stored; covers: (all, friends) d1,
        // (warm, all) d1 → tie, both selected under TieBreak::All.
        let ecod = parse_descriptor(&env, "weather = warm and company = friends")
            .unwrap()
            .into();
        let q = rank_cs(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Max,
        )
        .unwrap();
        let name_attr = rel.schema().attr("name").unwrap();
        let names: Vec<String> = q
            .results
            .tuple_indices()
            .map(|i| rel.tuple(i).value(name_attr).to_string())
            .collect();
        // Breweries (0.9) above Acropolis (0.8).
        assert_eq!(names, vec!["Mikro", "Zythos", "Acropolis"]);
        assert!(!q.is_non_contextual());
        assert!(q.total_cells() > 0);
    }

    #[test]
    fn exploratory_disjunction_unions_contexts() {
        let env = env();
        let rel = poi();
        let p = profile(&env, &rel);
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let ecod = parse_extended_descriptor(
            &env,
            "(weather = warm and company = family) or (weather = cold and company = family)",
        )
        .unwrap();
        let q = rank_cs(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Max,
        )
        .unwrap();
        // warm+family → zoo (0.95, exact); cold+family → museum (0.7 via
        // (cold, all)).
        let top = q.results.entries()[0];
        assert_eq!(top.score, 0.95);
        assert_eq!(q.resolutions.len(), 2);
        assert_eq!(q.resolutions[0].outcome, MatchOutcome::Exact);
        assert_eq!(q.resolutions[1].outcome, MatchOutcome::Covered);
        assert_eq!(q.results.len(), 2);
    }

    #[test]
    fn no_match_yields_empty_non_contextual() {
        let env = env();
        let rel = poi();
        let mut p = Profile::new(env.clone());
        p.insert(
            ContextualPreference::new(
                parse_descriptor(&env, "weather = cold and company = family").unwrap(),
                AttributeClause::eq(rel.schema().attr("type").unwrap(), "museum".into()),
                0.7,
            )
            .unwrap(),
        )
        .unwrap();
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let ecod = parse_descriptor(&env, "weather = warm and company = friends")
            .unwrap()
            .into();
        let q = rank_cs(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Max,
        )
        .unwrap();
        assert!(q.is_non_contextual());
        assert!(q.results.is_empty());
    }

    #[test]
    fn tree_and_serial_rank_identically() {
        let env = env();
        let rel = poi();
        let p = profile(&env, &rel);
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let serial = SerialStore::from_profile(&p).unwrap();
        for cod in [
            "weather = warm and company = friends",
            "weather = cold and company = family",
            "weather = warm and company = family",
        ] {
            let ecod = parse_descriptor(&env, cod).unwrap().into();
            let a = rank_cs(
                &tree,
                &rel,
                &ecod,
                DistanceKind::Jaccard,
                TieBreak::All,
                ScoreCombiner::Max,
            )
            .unwrap();
            let b = rank_cs(
                &serial,
                &rel,
                &ecod,
                DistanceKind::Jaccard,
                TieBreak::All,
                ScoreCombiner::Max,
            )
            .unwrap();
            assert_eq!(a.results, b.results, "divergence for {cod}");
        }
    }

    #[test]
    fn duplicate_tuples_combined_with_policy() {
        let env = env();
        let rel = poi();
        let ty = rel.schema().attr("type").unwrap();
        let cost = rel.schema().attr("cost").unwrap();
        let mut p = Profile::new(env.clone());
        // Two preferences both selecting breweries under the same state,
        // via different clauses.
        p.insert(
            ContextualPreference::new(
                parse_descriptor(&env, "company = friends").unwrap(),
                AttributeClause::eq(ty, "brewery".into()),
                0.9,
            )
            .unwrap(),
        )
        .unwrap();
        p.insert(
            ContextualPreference::new(
                parse_descriptor(&env, "company = friends").unwrap(),
                AttributeClause::new(cost, ctxpref_relation::CompareOp::Le, 5.0.into()),
                0.3,
            )
            .unwrap(),
        )
        .unwrap();
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let ecod = parse_descriptor(&env, "company = friends").unwrap().into();
        let max = rank_cs(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Max,
        )
        .unwrap();
        let avg = rank_cs(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Avg,
        )
        .unwrap();
        // Mikro (brewery, cost 0) matches both → max 0.9, avg 0.6.
        let mikro_max = max
            .results
            .entries()
            .iter()
            .find(|e| e.tuple_index == 2)
            .unwrap();
        let mikro_avg = avg
            .results
            .entries()
            .iter()
            .find(|e| e.tuple_index == 2)
            .unwrap();
        assert_eq!(mikro_max.score, 0.9);
        assert!((mikro_avg.score - 0.6).abs() < 1e-12);
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;
    use ctxpref_profile::{ParamOrder, ProfileTree};
    use ctxpref_relation::{AttrType, Schema};
    use ctxpref_workload_free::*;

    /// Local mini-generator (kept dependency-free: resolve cannot depend
    /// on ctxpref-workload without a cycle).
    mod ctxpref_workload_free {
        use super::*;
        use ctxpref_context::{ContextDescriptor, ContextEnvironment, ParameterDescriptor};
        use ctxpref_hierarchy::Hierarchy;
        use ctxpref_profile::{AttributeClause, ContextualPreference, Profile};

        pub fn env3() -> ContextEnvironment {
            ContextEnvironment::new(vec![
                Hierarchy::balanced("a", &[6, 2]).unwrap(),
                Hierarchy::balanced("b", &[5]).unwrap(),
            ])
            .unwrap()
        }

        pub fn relation(n: usize) -> Relation {
            let schema = Schema::new(&[("v", AttrType::Str)]).unwrap();
            let mut rel = Relation::new("r", schema);
            for i in 0..n {
                rel.insert(vec![format!("v{}", i % 12).into()]).unwrap();
            }
            rel
        }

        pub fn profile(env: &ContextEnvironment, seed: u64) -> Profile {
            let mut p = Profile::new(env.clone());
            let ha = env.hierarchy(ctxpref_context::ParamId(0));
            let hb = env.hierarchy(ctxpref_context::ParamId(1));
            let da = ha.domain(ha.detailed_level());
            let db = hb.domain(hb.detailed_level());
            let mut x = seed;
            for i in 0..60u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let va = da[(x >> 8) as usize % da.len()];
                let vb = db[(x >> 20) as usize % db.len()];
                let clause_v = (x >> 32) % 12;
                let score = 0.05 + ((x >> 40).wrapping_add(i) % 90) as f64 / 100.0;
                let cod = ContextDescriptor::empty()
                    .with(ctxpref_context::ParamId(0), ParameterDescriptor::Eq(va))
                    .with(ctxpref_context::ParamId(1), ParameterDescriptor::Eq(vb));
                let clause =
                    AttributeClause::eq(ctxpref_relation::AttrId(0), format!("v{clause_v}").into());
                // Deduplicate conflicting (state, clause) pairs by skipping.
                let pref = ContextualPreference::new(cod, clause, score).unwrap();
                let _ = p.insert(pref);
            }
            p
        }
    }

    #[test]
    fn topk_matches_full_ranking_prefix() {
        let env = env3();
        let rel = relation(120);
        for seed in 0..8u64 {
            let p = profile(&env, seed);
            let tree =
                ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
            let ha = env.hierarchy(ctxpref_context::ParamId(0));
            let q = ctxpref_context::ContextState::from_values_unchecked(vec![
                ha.domain(ha.detailed_level())[seed as usize % 6],
                env.hierarchy(ctxpref_context::ParamId(1))
                    .domain(ctxpref_hierarchy::LevelId(0))[seed as usize % 5],
            ]);
            let ecod: ExtendedContextDescriptor = {
                let mut cod = ctxpref_context::ContextDescriptor::empty();
                for (pid, h) in env.iter() {
                    let v = q.value(pid);
                    if v != h.all_value() {
                        cod = cod.with(pid, ctxpref_context::ParameterDescriptor::Eq(v));
                    }
                }
                cod.into()
            };
            for k in [1usize, 3, 10, 100] {
                let full = rank_cs(
                    &tree,
                    &rel,
                    &ecod,
                    DistanceKind::Hierarchy,
                    TieBreak::All,
                    ScoreCombiner::Max,
                )
                .unwrap();
                let fast = rank_cs_topk(
                    &tree,
                    &rel,
                    &ecod,
                    DistanceKind::Hierarchy,
                    TieBreak::All,
                    ScoreCombiner::Max,
                    k,
                )
                .unwrap();
                assert_eq!(
                    full.results.top_k_with_ties(k),
                    fast.results.entries(),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn non_max_combiner_falls_back() {
        let env = env3();
        let rel = relation(40);
        let p = profile(&env, 3);
        let tree = ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
        let ecod: ExtendedContextDescriptor = ctxpref_context::ContextDescriptor::empty().into();
        let a = rank_cs(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Avg,
        )
        .unwrap();
        let b = rank_cs_topk(
            &tree,
            &rel,
            &ecod,
            DistanceKind::Hierarchy,
            TieBreak::All,
            ScoreCombiner::Avg,
            2,
        )
        .unwrap();
        assert_eq!(a.results, b.results, "avg combiner must not truncate");
    }
}
