use ctxpref_context::{ContextState, DistanceKind, ExtendedContextDescriptor};
use ctxpref_profile::{AccessCounter, Candidate, ProfileError};

use crate::matching::minimal_covering;
use crate::store::PreferenceStore;

/// How a query state was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchOutcome {
    /// The exact state is stored (first case of Section 4.4).
    Exact,
    /// One or more stored states cover the query state.
    Covered,
    /// Nothing covers the state — the query proceeds as a normal,
    /// non-contextual preference query (Section 4.2).
    NoMatch,
}

impl std::fmt::Display for MatchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Exact => write!(f, "exact"),
            Self::Covered => write!(f, "covered"),
            Self::NoMatch => write!(f, "no match"),
        }
    }
}

/// Tie handling when several covering states share the minimum
/// distance. The paper: "There are many ways to handle such ties. One
/// is to let the user decide."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Return every minimum-distance candidate (the paper's "more than
    /// one candidate can be selected by the system or the user").
    #[default]
    All,
    /// Return only the first minimum-distance candidate (deterministic
    /// system choice).
    First,
}

/// The resolution of one query context state.
#[derive(Debug, Clone)]
pub struct StateResolution {
    /// The query state being resolved.
    pub query_state: ContextState,
    /// How the state was resolved.
    pub outcome: MatchOutcome,
    /// The selected candidates: the exact leaf, the minimum-distance
    /// covering state(s), or empty.
    pub selected: Vec<Candidate>,
    /// Total covering candidates considered (before tie-breaking);
    /// equals `selected.len()` for exact matches.
    pub candidate_count: usize,
    /// Cells accessed resolving this state.
    pub cells: u64,
}

/// Context resolution over any [`PreferenceStore`] (Section 4.4).
#[derive(Debug, Clone, Copy)]
pub struct ContextResolver<'a, S: PreferenceStore + ?Sized> {
    store: &'a S,
    kind: DistanceKind,
    tie: TieBreak,
}

impl<'a, S: PreferenceStore + ?Sized> ContextResolver<'a, S> {
    /// A resolver over `store` with the given distance and tie policy.
    pub fn new(store: &'a S, kind: DistanceKind, tie: TieBreak) -> Self {
        Self { store, kind, tie }
    }

    /// The underlying store.
    pub fn store(&self) -> &'a S {
        self.store
    }

    /// The distance metric in use.
    pub fn distance_kind(&self) -> DistanceKind {
        self.kind
    }

    /// Resolve a single context state: exact lookup first, then
    /// `Search_CS` for covering states, keeping the minimum-distance
    /// candidate(s).
    pub fn resolve_state(&self, state: &ContextState) -> StateResolution {
        let mut counter = AccessCounter::new();
        let exact = self.store.lookup_exact(state, &mut counter);
        if !exact.is_empty() {
            let selected: Vec<Candidate> = exact
                .into_iter()
                .map(|leaf| Candidate {
                    state: state.clone(),
                    distance: 0.0,
                    leaf,
                })
                .collect();
            return StateResolution {
                query_state: state.clone(),
                outcome: MatchOutcome::Exact,
                candidate_count: selected.len(),
                selected,
                cells: counter.cells(),
            };
        }
        let candidates = self.store.lookup_covering(state, self.kind, &mut counter);
        if candidates.is_empty() {
            return StateResolution {
                query_state: state.clone(),
                outcome: MatchOutcome::NoMatch,
                selected: Vec::new(),
                candidate_count: 0,
                cells: counter.cells(),
            };
        }
        let min = candidates
            .iter()
            .map(|c| c.distance)
            .fold(f64::INFINITY, f64::min);
        let mut selected: Vec<Candidate> = candidates
            .iter()
            .filter(|c| (c.distance - min).abs() < 1e-9)
            .cloned()
            .collect();
        if self.tie == TieBreak::First && selected.len() > 1 {
            selected.truncate(1);
        }
        StateResolution {
            query_state: state.clone(),
            outcome: MatchOutcome::Covered,
            selected,
            candidate_count: candidates.len(),
            cells: counter.cells(),
        }
    }

    /// The full matches of Definition 12 for one state (minimal covering
    /// states in the `covers` order), without distance tie-breaking.
    /// Used when the system presents all matches and lets the user
    /// decide.
    pub fn matches(&self, state: &ContextState) -> (Vec<Candidate>, u64) {
        let mut counter = AccessCounter::new();
        let exact = self.store.lookup_exact(state, &mut counter);
        if !exact.is_empty() {
            return (
                exact
                    .into_iter()
                    .map(|leaf| Candidate {
                        state: state.clone(),
                        distance: 0.0,
                        leaf,
                    })
                    .collect(),
                counter.cells(),
            );
        }
        let candidates = self.store.lookup_covering(state, self.kind, &mut counter);
        (
            minimal_covering(self.store.env(), &candidates),
            counter.cells(),
        )
    }

    /// Resolve every state of an extended context descriptor
    /// (Definition 8): one [`StateResolution`] per state of its context.
    pub fn resolve(
        &self,
        ecod: &ExtendedContextDescriptor,
    ) -> Result<Vec<StateResolution>, ProfileError> {
        let states = ecod.states(self.store.env())?;
        Ok(states.iter().map(|s| self.resolve_state(s)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::{parse_descriptor, parse_extended_descriptor, ContextEnvironment};
    use ctxpref_hierarchy::HierarchyBuilder;
    use ctxpref_profile::{
        AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree, SerialStore,
    };
    use ctxpref_relation::AttrId;

    /// Two-parameter environment from the paper's Section 4.2 example:
    /// location (City ≺ Country ≺ ALL), weather (Conditions ≺ Char ≺ ALL).
    fn env() -> ContextEnvironment {
        let mut loc = HierarchyBuilder::new("location", &["City", "Country"]);
        loc.add("Country", "Greece", None).unwrap();
        loc.add("City", "Athens", Some("Greece")).unwrap();
        loc.add("City", "Ioannina", Some("Greece")).unwrap();
        let mut w = HierarchyBuilder::new("weather", &["Conditions", "Char"]);
        w.add("Char", "bad", None).unwrap();
        w.add("Char", "good", None).unwrap();
        w.add_leaves("bad", &["cold"]).unwrap();
        w.add_leaves("good", &["warm", "hot"]).unwrap();
        ContextEnvironment::new(vec![loc.build().unwrap(), w.build().unwrap()]).unwrap()
    }

    fn profile(env: &ContextEnvironment, specs: &[(&str, &str, f64)]) -> Profile {
        let mut p = Profile::new(env.clone());
        for &(cod, value, score) in specs {
            p.insert(
                ContextualPreference::new(
                    parse_descriptor(env, cod).unwrap(),
                    AttributeClause::eq(AttrId(0), value.into()),
                    score,
                )
                .unwrap(),
            )
            .unwrap();
        }
        p
    }

    #[test]
    fn section_4_2_example_picks_more_specific() {
        // Profile: (Greece, warm) and (all≈Europe, warm) — the paper's
        // example has Europe; our hierarchy tops out at `all`, which
        // plays the same role. The query (Athens, warm) must resolve to
        // the more specific (Greece, warm).
        let env = env();
        let p = profile(
            &env,
            &[
                ("location = Greece and weather = warm", "a", 0.6),
                ("weather = warm", "b", 0.7),
            ],
        );
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let q = ContextState::parse(&env, &["Athens", "warm"]).unwrap();
        let res = r.resolve_state(&q);
        assert_eq!(res.outcome, MatchOutcome::Covered);
        assert_eq!(res.candidate_count, 2);
        assert_eq!(res.selected.len(), 1);
        assert_eq!(
            res.selected[0].state.display(&env).to_string(),
            "(Greece, warm)"
        );
        assert!(res.cells > 0);
    }

    #[test]
    fn exact_match_short_circuits() {
        let env = env();
        let p = profile(&env, &[("location = Athens and weather = warm", "a", 0.6)]);
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let q = ContextState::parse(&env, &["Athens", "warm"]).unwrap();
        let res = r.resolve_state(&q);
        assert_eq!(res.outcome, MatchOutcome::Exact);
        assert_eq!(res.selected.len(), 1);
        assert_eq!(res.selected[0].distance, 0.0);
        assert_eq!(r.distance_kind(), DistanceKind::Hierarchy);
    }

    #[test]
    fn no_match_reports_nomatch() {
        let env = env();
        let p = profile(&env, &[("location = Ioannina", "a", 0.6)]);
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let q = ContextState::parse(&env, &["Athens", "warm"]).unwrap();
        let res = r.resolve_state(&q);
        assert_eq!(res.outcome, MatchOutcome::NoMatch);
        assert!(res.selected.is_empty());
    }

    #[test]
    fn tie_handling_all_vs_first() {
        // The paper's tie: (Greece, warm) vs (Athens, good), query
        // (Athens, warm) — both at hierarchy distance 1.
        let env = env();
        let p = profile(
            &env,
            &[
                ("location = Greece and weather = warm", "a", 0.6),
                ("location = Athens and weather = good", "b", 0.7),
            ],
        );
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let q = ContextState::parse(&env, &["Athens", "warm"]).unwrap();
        let all =
            ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All).resolve_state(&q);
        assert_eq!(all.selected.len(), 2);
        let first =
            ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::First).resolve_state(&q);
        assert_eq!(first.selected.len(), 1);
        // The Jaccard distance breaks this tie: Greece has 2 city
        // descendants, good has 2 condition descendants — here equal
        // cardinalities, so check both candidates remain.
        let jac =
            ContextResolver::new(&tree, DistanceKind::Jaccard, TieBreak::All).resolve_state(&q);
        assert!(!jac.selected.is_empty());
    }

    #[test]
    fn matches_returns_definition_12_set() {
        let env = env();
        let p = profile(
            &env,
            &[
                ("location = Greece and weather = warm", "a", 0.6),
                ("location = Athens and weather = good", "b", 0.7),
                ("weather = good", "c", 0.3), // dominated by both
            ],
        );
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let q = ContextState::parse(&env, &["Athens", "warm"]).unwrap();
        let (matches, cells) = r.matches(&q);
        assert_eq!(matches.len(), 2, "dominated (all, good) must be filtered");
        assert!(cells > 0);
        assert!(matches.iter().all(|c| c.state.covers(&q, &env)));
    }

    #[test]
    fn tree_and_serial_agree_on_selection() {
        let env = env();
        let p = profile(
            &env,
            &[
                ("location = Greece and weather = warm", "a", 0.6),
                ("weather = good", "b", 0.4),
                ("location = Athens", "c", 0.9),
                ("location = Ioannina and weather = cold", "d", 0.2),
            ],
        );
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let serial = SerialStore::from_profile(&p).unwrap();
        for q in [
            ContextState::parse(&env, &["Athens", "warm"]).unwrap(),
            ContextState::parse(&env, &["Ioannina", "cold"]).unwrap(),
            ContextState::parse(&env, &["Ioannina", "hot"]).unwrap(),
        ] {
            for kind in [DistanceKind::Hierarchy, DistanceKind::Jaccard] {
                let rt = ContextResolver::new(&tree, kind, TieBreak::All).resolve_state(&q);
                let rs = ContextResolver::new(&serial, kind, TieBreak::All).resolve_state(&q);
                assert_eq!(rt.outcome, rs.outcome, "query {}", q.display(&env));
                let mut st: Vec<String> = rt
                    .selected
                    .iter()
                    .map(|c| c.state.display(&env).to_string())
                    .collect();
                let mut ss: Vec<String> = rs
                    .selected
                    .iter()
                    .map(|c| c.state.display(&env).to_string())
                    .collect();
                st.sort();
                ss.sort();
                assert_eq!(st, ss);
            }
        }
    }

    #[test]
    fn resolve_extended_descriptor() {
        let env = env();
        let p = profile(&env, &[("location = Greece", "a", 0.6)]);
        let tree = ProfileTree::from_profile(&p, ParamOrder::identity(&env)).unwrap();
        let r = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let ecod = parse_extended_descriptor(
            &env,
            "(location = Athens and weather = warm) or (location = Ioannina and weather = cold)",
        )
        .unwrap();
        let res = r.resolve(&ecod).unwrap();
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|x| x.outcome == MatchOutcome::Covered));
        assert_eq!(MatchOutcome::Covered.to_string(), "covered");
        assert_eq!(MatchOutcome::Exact.to_string(), "exact");
        assert_eq!(MatchOutcome::NoMatch.to_string(), "no match");
    }
}
