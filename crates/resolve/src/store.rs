use ctxpref_context::{ContextEnvironment, ContextState, DistanceKind};
use ctxpref_profile::{
    AccessCounter, Candidate, CompressedProfileTree, LeafEntry, LeafId, ProfileTree, SerialStore,
};

/// Abstraction over physical preference stores: the profile tree and
/// the serial (sequential-scan) baseline. All methods charge the shared
/// [`AccessCounter`] so both sides of Figure 7 are measured identically.
pub trait PreferenceStore {
    /// The context environment the store is built over.
    fn env(&self) -> &ContextEnvironment;

    /// Leaves holding preferences whose context state equals `state`
    /// exactly. The profile tree returns at most one leaf; the serial
    /// store returns one pseudo-leaf per matching record.
    fn lookup_exact(&self, state: &ContextState, counter: &mut AccessCounter) -> Vec<LeafId>;

    /// `Search_CS`: every stored state that equals or covers `state`,
    /// with its distance under `kind`.
    fn lookup_covering(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate>;

    /// The `[attribute θ value, score]` entries of a leaf.
    fn entries(&self, leaf: LeafId) -> &[LeafEntry];

    /// Short label for reports ("profile tree" / "serial").
    fn label(&self) -> &'static str;
}

impl PreferenceStore for ProfileTree {
    fn env(&self) -> &ContextEnvironment {
        ProfileTree::env(self)
    }

    fn lookup_exact(&self, state: &ContextState, counter: &mut AccessCounter) -> Vec<LeafId> {
        match self.exact_lookup(state, counter) {
            Some((leaf, _)) => vec![leaf],
            None => Vec::new(),
        }
    }

    fn lookup_covering(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate> {
        self.search_cs(state, kind, counter)
    }

    fn entries(&self, leaf: LeafId) -> &[LeafEntry] {
        self.leaf(leaf)
    }

    fn label(&self) -> &'static str {
        "profile tree"
    }
}

impl PreferenceStore for SerialStore {
    fn env(&self) -> &ContextEnvironment {
        SerialStore::env(self)
    }

    fn lookup_exact(&self, state: &ContextState, counter: &mut AccessCounter) -> Vec<LeafId> {
        let hits = self.exact_lookup(state, counter).len();
        // Re-derive the record ids of the hits: records for one state
        // are contiguous, so find them without further charging.
        let mut out = Vec::with_capacity(hits);
        for (i, r) in self.records().iter().enumerate() {
            if r.state == *state {
                out.push(LeafId(i as u32));
                if out.len() == hits {
                    break;
                }
            }
        }
        out
    }

    fn lookup_covering(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate> {
        self.search_covering(state, kind, counter)
    }

    fn entries(&self, leaf: LeafId) -> &[LeafEntry] {
        self.leaf(leaf)
    }

    fn label(&self) -> &'static str {
        "serial"
    }
}

impl PreferenceStore for CompressedProfileTree {
    fn env(&self) -> &ContextEnvironment {
        CompressedProfileTree::env(self)
    }

    fn lookup_exact(&self, state: &ContextState, counter: &mut AccessCounter) -> Vec<LeafId> {
        match self.exact_lookup(state, counter) {
            Some((leaf, _)) => vec![leaf],
            None => Vec::new(),
        }
    }

    fn lookup_covering(
        &self,
        state: &ContextState,
        kind: DistanceKind,
        counter: &mut AccessCounter,
    ) -> Vec<Candidate> {
        self.search_cs(state, kind, counter)
    }

    fn entries(&self, leaf: LeafId) -> &[LeafEntry] {
        self.leaf(leaf)
    }

    fn label(&self) -> &'static str {
        "compressed profile tree"
    }
}
