//! The matching-context definition (Definition 12): among the stored
//! states covering a query state, a *match* is one that no other
//! covering state sits strictly below (closer to the query) in the
//! `covers` partial order.

use ctxpref_context::ContextEnvironment;
use ctxpref_profile::Candidate;

/// Filter `candidates` (all of which cover the query state) down to the
/// minimal elements of the `covers` partial order — the matches of
/// Definition 12. States appearing more than once are kept once per
/// leaf.
///
/// By Properties 2–3 of the paper, every minimum-distance candidate is
/// minimal; the converse does not hold (two incomparable matches can
/// have different distances — the paper's `(Greece, warm)` vs
/// `(Athens, good)` example), which is why resolution breaks the
/// remaining ties by distance afterwards.
pub fn minimal_covering(env: &ContextEnvironment, candidates: &[Candidate]) -> Vec<Candidate> {
    candidates
        .iter()
        .filter(|c| {
            !candidates
                .iter()
                .any(|other| other.state != c.state && c.state.covers(&other.state, env))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctxpref_context::ContextState;
    use ctxpref_hierarchy::HierarchyBuilder;
    use ctxpref_profile::LeafId;

    fn env() -> ContextEnvironment {
        let mut loc = HierarchyBuilder::new("location", &["City", "Country"]);
        loc.add("Country", "Greece", None).unwrap();
        loc.add("City", "Athens", Some("Greece")).unwrap();
        let mut w = HierarchyBuilder::new("weather", &["Conditions", "Char"]);
        w.add("Char", "good", None).unwrap();
        w.add_leaves("good", &["warm", "hot"]).unwrap();
        ContextEnvironment::new(vec![loc.build().unwrap(), w.build().unwrap()]).unwrap()
    }

    fn cand(env: &ContextEnvironment, names: &[&str], distance: f64, id: u32) -> Candidate {
        Candidate {
            state: ContextState::parse(env, names).unwrap(),
            distance,
            leaf: LeafId(id),
        }
    }

    #[test]
    fn paper_tie_example_keeps_both() {
        // Query (Athens, warm); candidates (Greece, warm) and
        // (Athens, good): incomparable, both matches.
        let env = env();
        let cands = vec![
            cand(&env, &["Greece", "warm"], 1.0, 0),
            cand(&env, &["Athens", "good"], 1.0, 1),
        ];
        let min = minimal_covering(&env, &cands);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn dominated_candidates_are_dropped() {
        // (Greece, good) covers (Greece, warm) → only the latter is a
        // match (Definition 12's condition ii).
        let env = env();
        let cands = vec![
            cand(&env, &["Greece", "warm"], 1.0, 0),
            cand(&env, &["Greece", "good"], 2.0, 1),
        ];
        let min = minimal_covering(&env, &cands);
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].leaf, LeafId(0));
    }

    #[test]
    fn exact_state_dominates_all() {
        let env = env();
        let cands = vec![
            cand(&env, &["Athens", "warm"], 0.0, 0),
            cand(&env, &["Greece", "warm"], 1.0, 1),
            cand(&env, &["all", "all"], 3.0, 2),
        ];
        let min = minimal_covering(&env, &cands);
        assert_eq!(min.len(), 1);
        assert_eq!(min[0].distance, 0.0);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let env = env();
        assert!(minimal_covering(&env, &[]).is_empty());
    }
}
