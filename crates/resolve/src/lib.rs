#![warn(missing_docs)]
//! Context resolution (Section 4 of *"Adding Context to Preferences"*).
//!
//! Given a contextual query — a query enhanced with an extended context
//! descriptor (Definition 9) — and a stored profile, *context
//! resolution* finds, for every context state of the query, the stored
//! preferences most relevant to it:
//!
//! 1. an **exact match** if the state itself is stored (a single
//!    root-to-leaf traversal of the profile tree);
//! 2. otherwise, the stored states that **cover** it (`Search_CS`,
//!    Algorithm 1), keeping the one(s) at minimum hierarchy or Jaccard
//!    distance — by Properties 2–3 these are matches in the sense of
//!    Definition 12;
//! 3. if nothing covers it, the query is treated as non-contextual.
//!
//! `Rank_CS` (Algorithm 2) then turns the selected preference entries
//! into scored selections over the database relation and merges them
//! into a ranked answer.
//!
//! The [`PreferenceStore`] trait abstracts over the two physical stores
//! the paper compares — [`ctxpref_profile::ProfileTree`] and the
//! sequential [`ctxpref_profile::SerialStore`] — so every experiment
//! can run both sides with identical logic and identical cell-access
//! accounting.

mod explain;
mod matching;
mod rank;
mod resolver;
mod store;

pub use explain::explain_resolution;
pub use matching::minimal_covering;
pub use rank::{rank_cs, rank_cs_parallel, rank_cs_topk, RankedQuery};
pub use resolver::{ContextResolver, MatchOutcome, StateResolution, TieBreak};
pub use store::PreferenceStore;
