//! Traceability (Section 5.1): render *why* a query returned what it
//! returned — "users can track back which preferences were used to
//! attain the results and either modify the preferences or reconsider
//! their ranking".

use std::fmt::Write as _;

use ctxpref_relation::Schema;

use crate::resolver::{MatchOutcome, StateResolution};
use crate::store::PreferenceStore;

/// Render a human-readable trace of one state resolution: the query
/// state, the outcome, every selected candidate with its distance, and
/// the preference entries the candidate contributed.
pub fn explain_resolution<S: PreferenceStore + ?Sized>(
    store: &S,
    schema: &Schema,
    resolution: &StateResolution,
) -> String {
    let env = store.env();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "query state {} → {}",
        resolution.query_state.display(env),
        resolution.outcome
    );
    match resolution.outcome {
        MatchOutcome::Exact => {
            let _ = writeln!(out, "  the exact state is stored; its preferences apply:");
        }
        MatchOutcome::Covered => {
            let _ = writeln!(
                out,
                "  {} stored state(s) cover the query; {} selected at the minimum distance:",
                resolution.candidate_count,
                resolution.selected.len()
            );
        }
        MatchOutcome::NoMatch => {
            let _ = writeln!(
                out,
                "  no stored context state covers the query — executed as a \
                 non-contextual query"
            );
        }
    }
    for cand in &resolution.selected {
        let _ = writeln!(
            out,
            "  • stored state {} (distance {})",
            cand.state.display(env),
            cand.distance
        );
        for entry in store.entries(cand.leaf) {
            let _ = writeln!(
                out,
                "      {} with interest score {:.2}",
                entry.clause.display(schema),
                entry.score
            );
        }
    }
    let _ = writeln!(out, "  [{} cells accessed]", resolution.cells);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::{ContextResolver, TieBreak};
    use ctxpref_context::{parse_descriptor, ContextEnvironment, ContextState, DistanceKind};
    use ctxpref_hierarchy::Hierarchy;
    use ctxpref_profile::{
        AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree,
    };
    use ctxpref_relation::{AttrType, Schema};

    fn setup() -> (ContextEnvironment, Schema, ProfileTree) {
        let env =
            ContextEnvironment::new(vec![Hierarchy::flat("weather", &["cold", "warm"]).unwrap()])
                .unwrap();
        let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
        let mut profile = Profile::new(env.clone());
        profile
            .insert(
                ContextualPreference::new(
                    parse_descriptor(&env, "weather = warm").unwrap(),
                    AttributeClause::eq(schema.attr("type").unwrap(), "beach".into()),
                    0.9,
                )
                .unwrap(),
            )
            .unwrap();
        let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        (env, schema, tree)
    }

    #[test]
    fn explains_exact_and_covered_and_none() {
        let (env, schema, tree) = setup();
        let resolver = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);

        let exact = resolver.resolve_state(&ContextState::parse(&env, &["warm"]).unwrap());
        let text = explain_resolution(&tree, &schema, &exact);
        assert!(text.contains("exact"), "{text}");
        assert!(text.contains("type = beach"), "{text}");
        assert!(text.contains("0.90"), "{text}");
        assert!(text.contains("cells accessed"), "{text}");

        let cold = resolver.resolve_state(&ContextState::parse(&env, &["cold"]).unwrap());
        let text = explain_resolution(&tree, &schema, &cold);
        assert!(text.contains("no stored context state covers"), "{text}");
    }

    #[test]
    fn explains_covering_distance() {
        let env = ContextEnvironment::new(vec![
            Hierarchy::flat("weather", &["cold", "warm"]).unwrap(),
            Hierarchy::flat("company", &["friends", "family"]).unwrap(),
        ])
        .unwrap();
        let schema = Schema::new(&[("type", AttrType::Str)]).unwrap();
        let mut profile = Profile::new(env.clone());
        profile
            .insert(
                ContextualPreference::new(
                    parse_descriptor(&env, "weather = warm").unwrap(),
                    AttributeClause::eq(schema.attr("type").unwrap(), "beach".into()),
                    0.9,
                )
                .unwrap(),
            )
            .unwrap();
        let tree = ProfileTree::from_profile(&profile, ParamOrder::identity(&env)).unwrap();
        let resolver = ContextResolver::new(&tree, DistanceKind::Hierarchy, TieBreak::All);
        let res = resolver.resolve_state(&ContextState::parse(&env, &["warm", "friends"]).unwrap());
        let text = explain_resolution(&tree, &schema, &res);
        assert!(text.contains("covered"), "{text}");
        assert!(text.contains("(warm, all)"), "{text}");
        assert!(text.contains("distance 1"), "{text}");
    }
}
