//! Property test for the early-terminating top-k ranker: on random
//! profiles, relations, query states, and `k`, `rank_cs_topk` must
//! produce exactly `rank_cs` + `top_k_with_ties(k)` — the bounded
//! min-heap threshold may never cut off a tuple a full ranking would
//! have kept (the PR 2 hot-path bugfix regression test).

use ctxpref_context::{
    ContextDescriptor, ContextEnvironment, ContextState, DistanceKind, ExtendedContextDescriptor,
    ParamId, ParameterDescriptor,
};
use ctxpref_hierarchy::Hierarchy;
use ctxpref_profile::{AttributeClause, ContextualPreference, ParamOrder, Profile, ProfileTree};
use ctxpref_relation::{AttrId, AttrType, Relation, Schema, ScoreCombiner};
use ctxpref_resolve::{rank_cs, rank_cs_parallel, rank_cs_topk, TieBreak};
use proptest::prelude::*;

fn env() -> ContextEnvironment {
    ContextEnvironment::new(vec![
        Hierarchy::balanced("a", &[6, 2]).unwrap(),
        Hierarchy::balanced("b", &[5]).unwrap(),
    ])
    .unwrap()
}

fn relation(n: usize) -> Relation {
    let schema = Schema::new(&[("v", AttrType::Str)]).unwrap();
    let mut rel = Relation::new("r", schema);
    for i in 0..n {
        rel.insert(vec![format!("v{}", i % 12).into()]).unwrap();
    }
    rel
}

/// A seeded random profile: equality preferences over random detailed
/// states with scores drawn so duplicates and exact score ties occur.
fn profile(env: &ContextEnvironment, seed: u64, prefs: usize) -> Profile {
    let mut p = Profile::new(env.clone());
    let ha = env.hierarchy(ParamId(0));
    let hb = env.hierarchy(ParamId(1));
    let da = ha.domain(ha.detailed_level());
    let db = hb.domain(hb.detailed_level());
    let mut x = seed;
    for i in 0..prefs as u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let va = da[(x >> 8) as usize % da.len()];
        let vb = db[(x >> 20) as usize % db.len()];
        let clause_v = (x >> 32) % 12;
        // Coarse score grid → frequent ties at the k-th position.
        let score = 0.1 + ((x >> 40).wrapping_add(i) % 9) as f64 / 10.0;
        let cod = ContextDescriptor::empty()
            .with(ParamId(0), ParameterDescriptor::Eq(va))
            .with(ParamId(1), ParameterDescriptor::Eq(vb));
        let clause = AttributeClause::eq(AttrId(0), format!("v{clause_v}").into());
        // Conflicting (state, clause) pairs are skipped, like a user
        // whose duplicate insertion was rejected.
        let _ = p.insert(ContextualPreference::new(cod, clause, score).unwrap());
    }
    p
}

fn query_descriptor(env: &ContextEnvironment, state: &ContextState) -> ExtendedContextDescriptor {
    let mut cod = ContextDescriptor::empty();
    for (pid, h) in env.iter() {
        let v = state.value(pid);
        if v != h.all_value() {
            cod = cod.with(pid, ParameterDescriptor::Eq(v));
        }
    }
    cod.into()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_equals_full_rank_plus_topk_with_ties(
        seed in any::<u64>(),
        prefs in 5usize..80,
        tuples in 10usize..150,
        k in 1usize..30,
        state_ix in 0usize..30,
    ) {
        let env = env();
        let rel = relation(tuples);
        let p = profile(&env, seed, prefs);
        let tree = ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
        let ha = env.hierarchy(ParamId(0));
        let hb = env.hierarchy(ParamId(1));
        let da = ha.domain(ha.detailed_level());
        let db = hb.domain(hb.detailed_level());
        let state = ContextState::from_values_unchecked(vec![
            da[state_ix % da.len()],
            db[(state_ix / da.len()) % db.len()],
        ]);
        let ecod = query_descriptor(&env, &state);

        let full = rank_cs(
            &tree, &rel, &ecod, DistanceKind::Hierarchy, TieBreak::All, ScoreCombiner::Max,
        ).unwrap();
        let fast = rank_cs_topk(
            &tree, &rel, &ecod, DistanceKind::Hierarchy, TieBreak::All, ScoreCombiner::Max, k,
        ).unwrap();
        prop_assert_eq!(
            full.results.top_k_with_ties(k),
            fast.results.entries(),
            "seed {} prefs {} tuples {} k {}", seed, prefs, tuples, k
        );
        // The resolution trace is shared machinery; it must agree too.
        prop_assert_eq!(full.resolutions.len(), fast.resolutions.len());
    }

    /// The parallel Rank_CS must be bit-identical to the serial one on
    /// multi-state (exploratory) queries, for every combiner.
    #[test]
    fn parallel_rank_matches_serial(
        seed in any::<u64>(),
        prefs in 5usize..60,
        tuples in 10usize..100,
        threads in 2usize..6,
    ) {
        let env = env();
        let rel = relation(tuples);
        let p = profile(&env, seed, prefs);
        let tree = ProfileTree::from_profile(&p, ParamOrder::by_ascending_domain(&env)).unwrap();
        // A disjunction over parameter `b`'s domain → 5 context states.
        let hb = env.hierarchy(ParamId(1));
        let states: Vec<ContextDescriptor> = hb
            .domain(hb.detailed_level())
            .iter()
            .map(|&v| ContextDescriptor::empty().with(ParamId(1), ParameterDescriptor::Eq(v)))
            .collect();
        let ecod = ExtendedContextDescriptor::from_disjuncts(states);
        for combiner in [ScoreCombiner::Max, ScoreCombiner::Avg] {
            let serial = rank_cs(
                &tree, &rel, &ecod, DistanceKind::Hierarchy, TieBreak::All, combiner,
            ).unwrap();
            let parallel = rank_cs_parallel(
                &tree, &rel, &ecod, DistanceKind::Hierarchy, TieBreak::All, combiner, threads,
            ).unwrap();
            prop_assert_eq!(&serial.results, &parallel.results);
            prop_assert_eq!(serial.resolutions.len(), parallel.resolutions.len());
            for (a, b) in serial.resolutions.iter().zip(parallel.resolutions.iter()) {
                prop_assert_eq!(&a.query_state, &b.query_state);
                prop_assert_eq!(a.outcome, b.outcome);
                prop_assert_eq!(a.selected.len(), b.selected.len());
            }
        }
    }
}
