use crate::error::HierarchyError;
use crate::hierarchy::Hierarchy;
use crate::HierarchyBuilder;

impl Hierarchy {
    /// Generate a deterministic balanced hierarchy for synthetic
    /// workloads (Section 5.2 of the paper: "the parameter with 50
    /// values has 2 hierarchy levels, the parameter with 100 values has
    /// 3 hierarchy levels, …").
    ///
    /// `level_sizes` lists domain cardinalities bottom-up, *excluding*
    /// `ALL`; sizes must be non-increasing and each must be ≥ 1. Values
    /// are named `{name}_L{level}_{i}` and every upper-level value fans
    /// out over an (almost) equal share of the level below.
    ///
    /// ```
    /// use ctxpref_hierarchy::Hierarchy;
    /// // 100 detailed values grouped into 10, plus ALL → 3 levels.
    /// let h = Hierarchy::balanced("c", &[100, 10]).unwrap();
    /// assert_eq!(h.level_count(), 3);
    /// assert_eq!(h.domain_size(h.detailed_level()), 100);
    /// ```
    pub fn balanced(name: &str, level_sizes: &[usize]) -> Result<Hierarchy, HierarchyError> {
        if level_sizes.is_empty() {
            return Err(HierarchyError::NoLevels);
        }
        for w in level_sizes.windows(2) {
            if w[1] > w[0] {
                // A coarser level cannot have more values than the finer
                // one below it: `anc` must be total and monotone.
                return Err(HierarchyError::EmptyLevel(format!(
                    "{name}: level sizes must be non-increasing bottom-up, got {w:?}"
                )));
            }
        }
        if level_sizes.contains(&0) {
            return Err(HierarchyError::EmptyLevel(name.to_string()));
        }

        let level_names: Vec<String> = (0..level_sizes.len())
            .map(|i| format!("{name}_L{}", i + 1))
            .collect();
        let refs: Vec<&str> = level_names.iter().map(String::as_str).collect();
        let mut b = HierarchyBuilder::new(name, &refs);

        // Top user level first (no parents), then each level below maps
        // value i to parent floor(i * size_upper / size_lower) — an even,
        // monotone fan-out.
        let top = level_sizes.len() - 1;
        for i in 0..level_sizes[top] {
            b.add(&level_names[top], &value_name(name, top, i), None)?;
        }
        for lvl in (0..top).rev() {
            let size = level_sizes[lvl];
            let upper = level_sizes[lvl + 1];
            for i in 0..size {
                let parent = i * upper / size;
                b.add(
                    &level_names[lvl],
                    &value_name(name, lvl, i),
                    Some(&value_name(name, lvl + 1, parent)),
                )?;
            }
        }
        b.build()
    }
}

/// Canonical name of value `i` at (zero-based) level `lvl` of a balanced
/// hierarchy named `name`.
pub(crate) fn value_name(name: &str, lvl: usize, i: usize) -> String {
    format!("{name}_L{}_{i}", lvl + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelId;

    #[test]
    fn balanced_shapes() {
        let h = Hierarchy::balanced("c", &[50, 10]).unwrap();
        assert_eq!(h.level_count(), 3);
        assert_eq!(h.domain_size(LevelId(0)), 50);
        assert_eq!(h.domain_size(LevelId(1)), 10);
        assert_eq!(h.domain_size(h.all_level()), 1);
        assert_eq!(h.edom_size(), 61);
        h.validate().unwrap();
    }

    #[test]
    fn balanced_fanout_is_even() {
        let h = Hierarchy::balanced("c", &[100, 10]).unwrap();
        for &v in h.domain(LevelId(1)) {
            assert_eq!(h.leaf_count(v), 10);
        }
    }

    #[test]
    fn balanced_single_level() {
        let h = Hierarchy::balanced("c", &[7]).unwrap();
        assert_eq!(h.level_count(), 2);
        assert_eq!(h.domain_size(LevelId(0)), 7);
        h.validate().unwrap();
    }

    #[test]
    fn balanced_three_user_levels() {
        let h = Hierarchy::balanced("c", &[1000, 100, 10]).unwrap();
        assert_eq!(h.level_count(), 4);
        assert_eq!(h.edom_size(), 1111);
        h.validate().unwrap();
        // Each L2 value spans 10 leaves; each L3 value spans 100.
        for &v in h.domain(LevelId(1)) {
            assert_eq!(h.leaf_count(v), 10);
        }
        for &v in h.domain(LevelId(2)) {
            assert_eq!(h.leaf_count(v), 100);
        }
    }

    #[test]
    fn balanced_rejects_bad_shapes() {
        assert!(Hierarchy::balanced("c", &[]).is_err());
        assert!(Hierarchy::balanced("c", &[10, 50]).is_err());
        assert!(Hierarchy::balanced("c", &[10, 0]).is_err());
    }

    #[test]
    fn balanced_is_deterministic() {
        let a = Hierarchy::balanced("c", &[30, 6]).unwrap();
        let b = Hierarchy::balanced("c", &[30, 6]).unwrap();
        for v in a.edom() {
            assert_eq!(a.value_name(v), b.value_name(v));
            assert_eq!(a.leaf_range(v), b.leaf_range(v));
        }
    }
}
