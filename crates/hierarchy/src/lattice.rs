//! General level **lattices** — the full formalism of Section 3.1.
//!
//! The paper defines an attribute hierarchy as "a lattice `(L, ≺)` …
//! of m levels" whose upper bound is `ALL` and whose lower bound is the
//! detailed level. Every hierarchy actually drawn in the paper is a
//! chain, which is what [`crate::Hierarchy`] implements with O(1)
//! leaf-range tricks. This module implements the *general* case: a
//! level graph where one level may have several parent levels — e.g. a
//! time lattice
//!
//! ```text
//!            ALL
//!           /    \
//!   PartOfDay    DayType        (morning/noon/… | weekday/weekend)
//!           \    /
//!            Hour
//! ```
//!
//! with the three `anc` conditions enforced: totality per edge,
//! **composition** (diamonds must commute — `anc` to a level reachable
//! via several paths is path-independent), and monotonicity (audited by
//! [`LatticeHierarchy::validate_monotonicity`]).
//!
//! A [`LatticeHierarchy`] answers the same queries as a chain hierarchy
//! (`anc`, `desc`, leaf sets, Jaccard, minimum-path level distance) and
//! can be **decomposed into chains** ([`LatticeHierarchy::extract_chain`])
//! so that each maximal path becomes an ordinary [`crate::Hierarchy`]
//! usable as a context parameter by the rest of the system.

use std::collections::HashMap;

use crate::error::HierarchyError;
use crate::hierarchy::{Hierarchy, LevelId, ValueId, ALL_VALUE_NAME};
use crate::HierarchyBuilder;

/// Errors specific to lattice construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// A level name was declared twice, or `ALL` was used explicitly.
    BadLevel(String),
    /// A parent level reference did not resolve.
    UnknownLevel(String),
    /// The level graph has a cycle (levels must form a DAG under ≺).
    LevelCycle,
    /// A value name was used twice.
    DuplicateValue(String),
    /// A value is missing its parent at one of its level's parent levels.
    MissingParent {
        /// The child value.
        value: String,
        /// The parent level with no assignment.
        parent_level: String,
    },
    /// A referenced parent value does not exist at the expected level.
    BadParent {
        /// The child value.
        value: String,
        /// The unresolved or misplaced parent.
        parent: String,
    },
    /// Composition violated: two upward paths give different ancestors.
    DiamondMismatch {
        /// The value whose ancestors disagree.
        value: String,
        /// The level at which the two paths disagree.
        level: String,
    },
    /// An underlying chain-hierarchy error during extraction.
    Chain(HierarchyError),
    /// The requested chain is not an upward path in the lattice.
    NotAPath(String),
}

impl std::fmt::Display for LatticeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadLevel(l) => write!(f, "bad level declaration {l:?}"),
            Self::UnknownLevel(l) => write!(f, "unknown level {l:?}"),
            Self::LevelCycle => write!(f, "levels must form a DAG"),
            Self::DuplicateValue(v) => write!(f, "duplicate value {v:?}"),
            Self::MissingParent {
                value,
                parent_level,
            } => {
                write!(f, "value {value:?} has no parent at level {parent_level:?}")
            }
            Self::BadParent { value, parent } => {
                write!(f, "value {value:?} has invalid parent {parent:?}")
            }
            Self::DiamondMismatch { value, level } => write!(
                f,
                "anc composition violated: paths from {value:?} to level {level:?} disagree"
            ),
            Self::Chain(e) => write!(f, "{e}"),
            Self::NotAPath(p) => write!(f, "{p:?} is not an upward path of the lattice"),
        }
    }
}

impl std::error::Error for LatticeError {}

impl From<HierarchyError> for LatticeError {
    fn from(e: HierarchyError) -> Self {
        Self::Chain(e)
    }
}

#[derive(Debug, Clone)]
struct LevelInfo {
    name: String,
    /// Direct parent levels (edges of ≺ going up).
    parents: Vec<LevelId>,
}

#[derive(Debug, Clone)]
struct ValueInfo {
    name: String,
    level: LevelId,
    /// One parent value per direct parent level, aligned with
    /// `LevelInfo::parents`.
    parents: Vec<ValueId>,
    /// Sorted positions of detailed-level descendants.
    leaf_set: Vec<u32>,
}

/// A hierarchy over a general level lattice. Immutable once built.
#[derive(Debug, Clone)]
pub struct LatticeHierarchy {
    name: String,
    levels: Vec<LevelInfo>,
    values: Vec<ValueInfo>,
    by_level: Vec<Vec<ValueId>>,
    by_name: HashMap<String, ValueId>,
    /// `anc_table[v][l]`: the ancestor of value `v` at level `l`, if `l`
    /// is upward-reachable from `v`'s level.
    anc_table: Vec<Vec<Option<ValueId>>>,
    /// All-pairs minimum path length between levels in the *undirected*
    /// level graph (Definition 14's minimum number of edges).
    level_dist: Vec<Vec<u32>>,
}

/// Builder for a [`LatticeHierarchy`].
///
/// Declare levels bottom-up with their direct parent levels (`ALL` is
/// implicit: levels declared with no parents hang off `ALL`), then add
/// values with one parent value per parent level.
#[derive(Debug, Clone)]
pub struct LatticeBuilder {
    name: String,
    /// (level name, parent level names); `ALL` is appended at build.
    levels: Vec<(String, Vec<String>)>,
    /// (level, value, parent values by name).
    values: Vec<(String, String, Vec<String>)>,
}

impl LatticeBuilder {
    /// Start a lattice named `name`. The first declared level is the
    /// detailed level.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            levels: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Declare a level with its direct parent levels (already-declared
    /// names; empty = parent is `ALL`).
    pub fn level(&mut self, name: &str, parents: &[&str]) -> &mut Self {
        self.levels.push((
            name.to_string(),
            parents.iter().map(|p| p.to_string()).collect(),
        ));
        self
    }

    /// Add a value at `level` with one parent value per declared parent
    /// level (same order). Levels whose only parent is `ALL` take no
    /// parent values.
    pub fn value(&mut self, level: &str, name: &str, parents: &[&str]) -> &mut Self {
        self.values.push((
            level.to_string(),
            name.to_string(),
            parents.iter().map(|p| p.to_string()).collect(),
        ));
        self
    }

    /// Resolve everything, validate the three `anc` conditions that are
    /// checkable structurally (totality and composition), and build.
    pub fn build(&self) -> Result<LatticeHierarchy, LatticeError> {
        // ----- levels -----
        let mut level_names: Vec<String> = Vec::new();
        for (l, _) in &self.levels {
            if l == "ALL" || level_names.contains(l) {
                return Err(LatticeError::BadLevel(l.clone()));
            }
            level_names.push(l.clone());
        }
        if level_names.is_empty() {
            return Err(LatticeError::BadLevel("(no levels)".into()));
        }
        level_names.push("ALL".to_string());
        let all_level = LevelId((level_names.len() - 1) as u8);
        let level_of_name = |n: &str| -> Result<LevelId, LatticeError> {
            level_names
                .iter()
                .position(|x| x == n)
                .map(|i| LevelId(i as u8))
                .ok_or_else(|| LatticeError::UnknownLevel(n.to_string()))
        };
        let mut levels: Vec<LevelInfo> = Vec::with_capacity(level_names.len());
        for (i, (l, parents)) in self.levels.iter().enumerate() {
            let mut pids = Vec::new();
            for p in parents {
                let pid = level_of_name(p)?;
                // ≺ must be acyclic; requiring parents to be declared
                // *before* use would forbid valid orders, so only check
                // self-reference here and acyclicity below.
                if pid.index() == i {
                    return Err(LatticeError::LevelCycle);
                }
                pids.push(pid);
            }
            if pids.is_empty() {
                pids.push(all_level);
            }
            levels.push(LevelInfo {
                name: l.clone(),
                parents: pids,
            });
        }
        levels.push(LevelInfo {
            name: "ALL".into(),
            parents: Vec::new(),
        });

        // Acyclicity of the level graph (upward edges).
        {
            let mut state = vec![0u8; levels.len()]; // 0 new, 1 visiting, 2 done
            fn dfs(l: usize, levels: &[LevelInfo], state: &mut [u8]) -> bool {
                if state[l] == 1 {
                    return false;
                }
                if state[l] == 2 {
                    return true;
                }
                state[l] = 1;
                for p in &levels[l].parents {
                    if !dfs(p.index(), levels, state) {
                        return false;
                    }
                }
                state[l] = 2;
                true
            }
            for l in 0..levels.len() {
                if !dfs(l, &levels, &mut state) {
                    return Err(LatticeError::LevelCycle);
                }
            }
        }

        // ----- values -----
        let mut values: Vec<ValueInfo> = vec![ValueInfo {
            name: ALL_VALUE_NAME.to_string(),
            level: all_level,
            parents: Vec::new(),
            leaf_set: Vec::new(),
        }];
        let mut by_level: Vec<Vec<ValueId>> = vec![Vec::new(); levels.len()];
        by_level[all_level.index()].push(ValueId(0));
        let mut by_name: HashMap<String, ValueId> = HashMap::new();
        by_name.insert(ALL_VALUE_NAME.to_string(), ValueId(0));

        // First pass: create values.
        let mut raw_parents: Vec<Vec<String>> = vec![Vec::new()];
        for (level, name, parents) in &self.values {
            let lid = level_of_name(level)?;
            if name == ALL_VALUE_NAME || by_name.contains_key(name) {
                return Err(LatticeError::DuplicateValue(name.clone()));
            }
            let id = ValueId(values.len() as u32);
            by_name.insert(name.clone(), id);
            by_level[lid.index()].push(id);
            values.push(ValueInfo {
                name: name.clone(),
                level: lid,
                parents: Vec::new(),
                leaf_set: Vec::new(),
            });
            raw_parents.push(parents.clone());
        }

        // Second pass: resolve parent values, one per parent level.
        for vid in 1..values.len() {
            let lid = values[vid].level;
            let parent_levels = levels[lid.index()].parents.clone();
            let mut resolved = Vec::with_capacity(parent_levels.len());
            for (slot, &plevel) in parent_levels.iter().enumerate() {
                if plevel == all_level {
                    resolved.push(ValueId(0));
                    continue;
                }
                let pname =
                    raw_parents[vid]
                        .get(slot)
                        .ok_or_else(|| LatticeError::MissingParent {
                            value: values[vid].name.clone(),
                            parent_level: levels[plevel.index()].name.clone(),
                        })?;
                let &pid = by_name.get(pname).ok_or_else(|| LatticeError::BadParent {
                    value: values[vid].name.clone(),
                    parent: pname.clone(),
                })?;
                if values[pid.index()].level != plevel {
                    return Err(LatticeError::BadParent {
                        value: values[vid].name.clone(),
                        parent: pname.clone(),
                    });
                }
                resolved.push(pid);
            }
            values[vid].parents = resolved;
        }

        // ----- anc table (validating composition on diamonds) -----
        let nl = levels.len();
        let mut anc_table: Vec<Vec<Option<ValueId>>> = vec![vec![None; nl]; values.len()];
        // Process levels in topological order bottom-up: repeat until fix.
        // Since the level DAG is small, iterate levels in an order where
        // parents come later (Kahn on upward edges).
        let topo: Vec<usize> = {
            let mut indeg = vec![0usize; nl];
            for l in &levels {
                for p in &l.parents {
                    indeg[p.index()] += 1;
                }
            }
            // Start from levels nobody points up to... we want children
            // before parents, i.e., process in order of "all descendants
            // done". Use reverse topological order of the parent edges.
            let mut order = Vec::with_capacity(nl);
            let mut queue: Vec<usize> = (0..nl).filter(|&i| levels[i].parents.is_empty()).collect();
            // Kahn from the top (ALL) downward over reversed edges.
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); nl];
            for (i, l) in levels.iter().enumerate() {
                for p in &l.parents {
                    children[p.index()].push(i);
                }
            }
            let mut remaining = vec![0usize; nl];
            for (i, l) in levels.iter().enumerate() {
                remaining[i] = l.parents.len();
            }
            let _ = indeg;
            while let Some(top) = queue.pop() {
                order.push(top);
                for &c in &children[top] {
                    remaining[c] -= 1;
                    if remaining[c] == 0 {
                        queue.push(c);
                    }
                }
            }
            // `order` lists parents before children (ALL first), which
            // is what ancestor propagation needs: each value inherits
            // its parents' completed rows.
            order
        };

        for &l in &topo {
            for &vid in &by_level[l] {
                anc_table[vid.index()][l] = Some(vid);
                // Propagate through each direct parent.
                let parents: Vec<(LevelId, ValueId)> = levels[l]
                    .parents
                    .iter()
                    .copied()
                    .zip(values[vid.index()].parents.iter().copied())
                    .collect();
                for (plevel, pval) in parents {
                    // Everything the parent can reach, v can reach too.
                    for ul in 0..nl {
                        if let Some(a) = anc_table[pval.index()][ul] {
                            match anc_table[vid.index()][ul] {
                                None => anc_table[vid.index()][ul] = Some(a),
                                Some(existing) if existing != a => {
                                    return Err(LatticeError::DiamondMismatch {
                                        value: values[vid.index()].name.clone(),
                                        level: levels[ul].name.clone(),
                                    });
                                }
                                _ => {}
                            }
                        }
                    }
                    let _ = plevel;
                }
            }
        }

        // ----- leaf sets -----
        let mut leaf_sets: Vec<Vec<u32>> = vec![Vec::new(); values.len()];
        for (pos, &leaf) in by_level[0].iter().enumerate() {
            for anc in anc_table[leaf.index()].iter().flatten() {
                leaf_sets[anc.index()].push(pos as u32);
            }
        }
        for (vid, ls) in leaf_sets.into_iter().enumerate() {
            let mut ls = ls;
            ls.sort_unstable();
            ls.dedup();
            values[vid].leaf_set = ls;
        }

        // ----- level distances (undirected min path) -----
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nl];
        for (i, l) in levels.iter().enumerate() {
            for p in &l.parents {
                adj[i].push(p.index());
                adj[p.index()].push(i);
            }
        }
        let mut level_dist = vec![vec![u32::MAX; nl]; nl];
        for (start, row) in level_dist.iter_mut().enumerate() {
            let mut queue = std::collections::VecDeque::from([start]);
            row[start] = 0;
            while let Some(x) = queue.pop_front() {
                for &y in &adj[x] {
                    if row[y] == u32::MAX {
                        row[y] = row[x] + 1;
                        queue.push_back(y);
                    }
                }
            }
        }

        Ok(LatticeHierarchy {
            name: self.name.clone(),
            levels,
            values,
            by_level,
            by_name,
            anc_table,
            level_dist,
        })
    }
}

impl LatticeHierarchy {
    /// Name of the context parameter the lattice models.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels including `ALL`.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Resolve a level by name (`"ALL"` included).
    pub fn level_by_name(&self, name: &str) -> Option<LevelId> {
        self.levels
            .iter()
            .position(|l| l.name == name)
            .map(|i| LevelId(i as u8))
    }

    /// Name of a level.
    pub fn level_name(&self, l: LevelId) -> &str {
        &self.levels[l.index()].name
    }

    /// Direct parent levels of a level.
    pub fn level_parents(&self, l: LevelId) -> &[LevelId] {
        &self.levels[l.index()].parents
    }

    /// The domain of one level.
    pub fn domain(&self, l: LevelId) -> &[ValueId] {
        &self.by_level[l.index()]
    }

    /// Total number of values across levels (`|edom|`).
    pub fn edom_size(&self) -> usize {
        self.values.len()
    }

    /// Resolve a value by name.
    pub fn lookup(&self, name: &str) -> Option<ValueId> {
        self.by_name.get(name).copied()
    }

    /// Name of a value.
    pub fn value_name(&self, v: ValueId) -> &str {
        &self.values[v.index()].name
    }

    /// The level a value belongs to.
    pub fn level_of(&self, v: ValueId) -> LevelId {
        self.values[v.index()].level
    }

    /// `anc(v, level)`: the unique ancestor of `v` at `level`, if the
    /// level is upward-reachable from `v`'s level (path-independence is
    /// guaranteed at build time).
    pub fn anc(&self, v: ValueId, level: LevelId) -> Option<ValueId> {
        self.anc_table[v.index()][level.index()]
    }

    /// `desc(v, level)`: all values at `level` whose ancestor is `v`.
    pub fn desc(&self, v: ValueId, level: LevelId) -> Vec<ValueId> {
        self.by_level[level.index()]
            .iter()
            .copied()
            .filter(|&u| self.anc(u, self.level_of(v)) == Some(v))
            .collect()
    }

    /// Sorted detailed-level positions below `v`.
    pub fn leaf_set(&self, v: ValueId) -> &[u32] {
        &self.values[v.index()].leaf_set
    }

    /// True iff `a == b` or `a` is an ancestor of `b`.
    pub fn is_ancestor_or_self(&self, a: ValueId, b: ValueId) -> bool {
        self.anc(b, self.level_of(a)) == Some(a)
    }

    /// Minimum number of edges between two levels in the undirected
    /// level graph (Definition 14). `None` if disconnected (impossible
    /// when every level reaches `ALL`).
    pub fn level_dist(&self, a: LevelId, b: LevelId) -> Option<u32> {
        let d = self.level_dist[a.index()][b.index()];
        (d != u32::MAX).then_some(d)
    }

    /// The Jaccard distance of two values (Definition 16), via sorted
    /// leaf-set intersection.
    pub fn jaccard(&self, a: ValueId, b: ValueId) -> f64 {
        let (sa, sb) = (self.leaf_set(a), self.leaf_set(b));
        let mut i = 0;
        let mut j = 0;
        let mut inter = 0usize;
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = sa.len() + sb.len() - inter;
        if union == 0 {
            0.0
        } else {
            1.0 - inter as f64 / union as f64
        }
    }

    /// Every maximal upward path of level ids from the detailed level to
    /// `ALL` — the chains the lattice decomposes into.
    pub fn chains(&self) -> Vec<Vec<LevelId>> {
        let mut out = Vec::new();
        let mut path = vec![LevelId(0)];
        self.chains_rec(LevelId(0), &mut path, &mut out);
        out
    }

    fn chains_rec(&self, at: LevelId, path: &mut Vec<LevelId>, out: &mut Vec<Vec<LevelId>>) {
        let parents = &self.levels[at.index()].parents;
        if parents.is_empty() {
            out.push(path.clone());
            return;
        }
        for &p in parents {
            path.push(p);
            self.chains_rec(p, path, out);
            path.pop();
        }
    }

    /// Extract one upward path as an ordinary chain [`Hierarchy`]
    /// (named `{lattice}_{top user level}`), usable as a context
    /// parameter by the rest of the system. `path` lists level names
    /// bottom-up starting at the detailed level; `ALL` is implicit.
    pub fn extract_chain(&self, path: &[&str]) -> Result<Hierarchy, LatticeError> {
        // Resolve and verify the path is upward-adjacent.
        let mut lids = Vec::with_capacity(path.len());
        for name in path {
            lids.push(
                self.level_by_name(name)
                    .ok_or_else(|| LatticeError::UnknownLevel((*name).to_string()))?,
            );
        }
        if lids.is_empty() || lids[0] != LevelId(0) {
            return Err(LatticeError::NotAPath(path.join(" ≺ ")));
        }
        for w in lids.windows(2) {
            if !self.levels[w[0].index()].parents.contains(&w[1]) {
                return Err(LatticeError::NotAPath(path.join(" ≺ ")));
            }
        }
        let top = *lids.last().unwrap();
        let chain_name = format!(
            "{}_{}",
            self.name,
            self.levels[top.index()].name.to_lowercase()
        );
        let mut b = HierarchyBuilder::new(&chain_name, path);
        // Top level values first (no parents), then downward. Values
        // with no detailed-level descendants are skipped: a chain
        // hierarchy requires `desc` to be total, and such values can
        // never be reached by a context state anyway.
        for &v in self.domain(top) {
            if self.leaf_set(v).is_empty() {
                continue;
            }
            b.add(self.level_name(top), self.value_name(v), None)?;
        }
        for w in lids.windows(2).rev() {
            let (lo, hi) = (w[0], w[1]);
            for &v in self.domain(lo) {
                if lo != LevelId(0) && self.leaf_set(v).is_empty() {
                    continue;
                }
                let parent = self.anc(v, hi).expect("anc total along lattice edges");
                b.add(
                    self.level_name(lo),
                    self.value_name(v),
                    Some(self.value_name(parent)),
                )?;
            }
        }
        Ok(b.build()?)
    }

    /// Decompose the lattice into all of its maximal chains, extracting
    /// one ordinary [`Hierarchy`] per upward path (see
    /// [`Self::extract_chain`]). Each chain shares the lattice's
    /// detailed-level value names, so a concrete detailed value can be
    /// located in every chain.
    pub fn decompose(&self) -> Result<Vec<Hierarchy>, LatticeError> {
        let mut out = Vec::new();
        for chain in self.chains() {
            // Drop the trailing ALL (implicit in extract_chain).
            let names: Vec<&str> = chain[..chain.len() - 1]
                .iter()
                .map(|&l| self.level_name(l))
                .collect();
            out.push(self.extract_chain(&names)?);
        }
        Ok(out)
    }

    /// Audit monotonicity (the third `anc` condition) with respect to
    /// the within-level insertion order. Lattices with crossing parent
    /// assignments are reported here rather than rejected at build —
    /// none of the resolution algorithms depend on monotonicity.
    pub fn validate_monotonicity(&self) -> Result<(), String> {
        for (li, level) in self.levels.iter().enumerate() {
            for (slot, &pl) in level.parents.iter().enumerate() {
                let mut last: Option<usize> = None;
                for &v in &self.by_level[li] {
                    let p = self.values[v.index()].parents[slot];
                    let pos = self.by_level[pl.index()]
                        .iter()
                        .position(|&x| x == p)
                        .expect("parent in its level domain");
                    if let Some(prev) = last {
                        if pos < prev {
                            return Err(format!(
                                "anc from {} to {} not monotone at value {}",
                                level.name,
                                self.levels[pl.index()].name,
                                self.value_name(v)
                            ));
                        }
                    }
                    last = Some(pos);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-branch time lattice of the module docs:
    /// Hour ≺ PartOfDay ≺ ALL and Hour ≺ DayType ≺ ALL, over a
    /// 2-day × 4-hour toy domain so diamonds are real.
    fn time_lattice() -> LatticeHierarchy {
        let mut b = LatticeBuilder::new("time");
        b.level("Hour", &["PartOfDay", "DayType"]);
        b.level("PartOfDay", &[]);
        b.level("DayType", &[]);
        for p in ["morning", "evening"] {
            b.value("PartOfDay", p, &[]);
        }
        for d in ["weekday", "weekend"] {
            b.value("DayType", d, &[]);
        }
        // hours: (day, slot) — mon/sat × 9am/9pm.
        b.value("Hour", "mon_9am", &["morning", "weekday"]);
        b.value("Hour", "mon_9pm", &["evening", "weekday"]);
        b.value("Hour", "sat_9am", &["morning", "weekend"]);
        b.value("Hour", "sat_9pm", &["evening", "weekend"]);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_answers_anc_desc() {
        let l = time_lattice();
        assert_eq!(l.level_count(), 4);
        assert_eq!(l.edom_size(), 9); // 4 hours + 2 + 2 + all
        let h = l.lookup("mon_9am").unwrap();
        let morning = l.lookup("morning").unwrap();
        let weekday = l.lookup("weekday").unwrap();
        let pod = l.level_by_name("PartOfDay").unwrap();
        let dt = l.level_by_name("DayType").unwrap();
        assert_eq!(l.anc(h, pod), Some(morning));
        assert_eq!(l.anc(h, dt), Some(weekday));
        assert_eq!(
            l.anc(h, l.level_by_name("ALL").unwrap()),
            Some(l.lookup("all").unwrap())
        );
        // desc from morning back to hours.
        let hours = l.desc(morning, LevelId(0));
        let names: Vec<&str> = hours.iter().map(|&v| l.value_name(v)).collect();
        assert_eq!(names, vec!["mon_9am", "sat_9am"]);
        // Incomparable levels: no anc from PartOfDay to DayType.
        assert_eq!(l.anc(morning, dt), None);
    }

    #[test]
    fn ancestor_or_self_and_leaf_sets() {
        let l = time_lattice();
        let h = l.lookup("sat_9pm").unwrap();
        let evening = l.lookup("evening").unwrap();
        let weekend = l.lookup("weekend").unwrap();
        let weekday = l.lookup("weekday").unwrap();
        assert!(l.is_ancestor_or_self(evening, h));
        assert!(l.is_ancestor_or_self(weekend, h));
        assert!(!l.is_ancestor_or_self(weekday, h));
        assert!(l.is_ancestor_or_self(h, h));
        assert_eq!(l.leaf_set(evening).len(), 2);
        assert_eq!(l.leaf_set(l.lookup("all").unwrap()).len(), 4);
        assert_eq!(l.leaf_set(h).len(), 1);
    }

    #[test]
    fn jaccard_across_branches() {
        let l = time_lattice();
        let morning = l.lookup("morning").unwrap();
        let weekday = l.lookup("weekday").unwrap();
        // morning = {mon_9am, sat_9am}, weekday = {mon_9am, mon_9pm}:
        // intersection 1, union 3 → distance 2/3.
        assert!((l.jaccard(morning, weekday) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(l.jaccard(morning, morning), 0.0);
    }

    #[test]
    fn level_distances_use_min_paths() {
        let l = time_lattice();
        let hour = LevelId(0);
        let pod = l.level_by_name("PartOfDay").unwrap();
        let dt = l.level_by_name("DayType").unwrap();
        let all = l.level_by_name("ALL").unwrap();
        assert_eq!(l.level_dist(hour, pod), Some(1));
        assert_eq!(l.level_dist(hour, all), Some(2));
        // Between the two branches: PartOfDay—Hour—DayType or via ALL,
        // both length 2.
        assert_eq!(l.level_dist(pod, dt), Some(2));
        assert_eq!(l.level_dist(pod, pod), Some(0));
    }

    #[test]
    fn diamonds_must_commute() {
        // A 3-level diamond where the two paths to the top disagree.
        let mut b = LatticeBuilder::new("bad");
        b.level("Lo", &["A", "B"]);
        b.level("A", &["Top"]);
        b.level("B", &["Top"]);
        b.level("Top", &[]);
        b.value("Top", "t1", &[]);
        b.value("Top", "t2", &[]);
        b.value("A", "a1", &["t1"]);
        b.value("B", "b1", &["t2"]);
        // lo's path via A reaches t1, via B reaches t2 → mismatch.
        b.value("Lo", "lo", &["a1", "b1"]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, LatticeError::DiamondMismatch { .. }), "{err}");

        // Fixing B's parent makes it commute.
        let mut b = LatticeBuilder::new("good");
        b.level("Lo", &["A", "B"]);
        b.level("A", &["Top"]);
        b.level("B", &["Top"]);
        b.level("Top", &[]);
        b.value("Top", "t1", &[]);
        b.value("A", "a1", &["t1"]);
        b.value("B", "b1", &["t1"]);
        b.value("Lo", "lo", &["a1", "b1"]);
        let l = b.build().unwrap();
        assert_eq!(
            l.anc(l.lookup("lo").unwrap(), l.level_by_name("Top").unwrap()),
            l.lookup("t1")
        );
    }

    #[test]
    fn builder_errors() {
        let mut b = LatticeBuilder::new("x");
        b.level("L", &["nope"]);
        assert!(matches!(
            b.build().unwrap_err(),
            LatticeError::UnknownLevel(_)
        ));

        let mut b = LatticeBuilder::new("x");
        b.level("A", &["B"]);
        b.level("B", &["A"]);
        assert!(matches!(b.build().unwrap_err(), LatticeError::LevelCycle));

        let mut b = LatticeBuilder::new("x");
        b.level("L", &[]);
        b.value("L", "v", &[]);
        b.value("L", "v", &[]);
        assert!(matches!(
            b.build().unwrap_err(),
            LatticeError::DuplicateValue(_)
        ));

        let mut b = LatticeBuilder::new("x");
        b.level("Lo", &["Hi"]);
        b.level("Hi", &[]);
        b.value("Hi", "h", &[]);
        b.value("Lo", "l", &[]);
        assert!(matches!(
            b.build().unwrap_err(),
            LatticeError::MissingParent { .. }
        ));

        let mut b = LatticeBuilder::new("x");
        b.level("Lo", &["Hi"]);
        b.level("Hi", &[]);
        b.value("Hi", "h", &[]);
        b.value("Lo", "l", &["ghost"]);
        assert!(matches!(
            b.build().unwrap_err(),
            LatticeError::BadParent { .. }
        ));

        assert!(LatticeBuilder::new("x").build().is_err());
    }

    #[test]
    fn chains_enumerate_maximal_paths() {
        let l = time_lattice();
        let chains = l.chains();
        assert_eq!(chains.len(), 2);
        let rendered: Vec<Vec<&str>> = chains
            .iter()
            .map(|c| c.iter().map(|&lid| l.level_name(lid)).collect())
            .collect();
        assert!(rendered.contains(&vec!["Hour", "PartOfDay", "ALL"]));
        assert!(rendered.contains(&vec!["Hour", "DayType", "ALL"]));
    }

    #[test]
    fn chain_extraction_yields_working_hierarchies() {
        let l = time_lattice();
        let by_pod = l.extract_chain(&["Hour", "PartOfDay"]).unwrap();
        by_pod.validate().unwrap();
        assert_eq!(by_pod.level_count(), 3); // Hour, PartOfDay, ALL
        let h = by_pod.lookup("mon_9am").unwrap();
        let m = by_pod.lookup("morning").unwrap();
        assert_eq!(by_pod.anc(h, LevelId(1)), Some(m));
        assert_eq!(by_pod.leaf_count(m), 2);

        let by_dt = l.extract_chain(&["Hour", "DayType"]).unwrap();
        assert_eq!(
            by_dt
                .desc(by_dt.lookup("weekend").unwrap(), LevelId(0))
                .len(),
            2
        );

        // Non-paths are rejected.
        assert!(matches!(
            l.extract_chain(&["Hour", "ALL"]).unwrap_err(),
            LatticeError::NotAPath(_)
        ));
        assert!(matches!(
            l.extract_chain(&["PartOfDay"]).unwrap_err(),
            LatticeError::NotAPath(_)
        ));
    }

    #[test]
    fn monotonicity_audit() {
        let l = time_lattice();
        // mon_9am, mon_9pm, sat_9am, sat_9pm: DayType parents are
        // weekday, weekday, weekend, weekend → monotone; PartOfDay
        // parents morning, evening, morning, evening → NOT monotone.
        assert!(l.validate_monotonicity().is_err());

        // Reordering hours by part-of-day first fixes it for that edge
        // but breaks the other — a genuine lattice limitation the audit
        // surfaces. A single-branch lattice is monotone.
        let mut b = LatticeBuilder::new("c");
        b.level("Lo", &["Hi"]);
        b.level("Hi", &[]);
        b.value("Hi", "h1", &[]);
        b.value("Hi", "h2", &[]);
        b.value("Lo", "a", &["h1"]);
        b.value("Lo", "b", &["h2"]);
        assert!(b.build().unwrap().validate_monotonicity().is_ok());
    }
}
