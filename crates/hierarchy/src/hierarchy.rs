use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// The reserved name of the single value of the `ALL` level.
pub const ALL_VALUE_NAME: &str = "all";

/// The reserved name of the top level of every hierarchy lattice.
pub(crate) const ALL_LEVEL_NAME: &str = "ALL";

/// Identifies a level within one hierarchy. Level `0` is the *detailed*
/// level (`L1` in the paper); the largest level is always `ALL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LevelId(pub u8);

impl LevelId {
    /// The detailed level `L1`.
    pub const DETAILED: LevelId = LevelId(0);

    /// Zero-based index of the level, counting up from the detailed level.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LevelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0 as u32 + 1)
    }
}

/// Identifies an interned value within one hierarchy.
///
/// Ids are dense (`0..hierarchy.value_count()`), so they can be used to
/// index side tables. The id order is *not* the within-level domain
/// order; use [`Hierarchy::pos_in_level`] for that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

impl ValueId {
    #[inline]
    /// Zero-based dense index of the value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ValueData {
    pub(crate) name: String,
    pub(crate) level: LevelId,
    pub(crate) parent: Option<ValueId>,
    pub(crate) children: Vec<ValueId>,
    /// Contiguous range of detailed-level positions spanned by this
    /// value's descendants (for a detailed value, the singleton range of
    /// its own position).
    pub(crate) leaf_range: Range<u32>,
    /// Position of the value within its level's domain order.
    pub(crate) pos_in_level: u32,
}

/// A hierarchy of levels of aggregated data for one context parameter
/// (Section 3.1 of the paper).
///
/// The paper defines a hierarchy as a lattice `(L, ≺)` whose upper bound
/// is `ALL` and whose lower bound is the detailed level. Every hierarchy
/// in the paper (Figures 1–2) is a chain, and this implementation stores
/// chains; the minimum-path level distance of Definition 14 therefore
/// reduces to the absolute difference of level indices.
///
/// Built via [`crate::HierarchyBuilder`], [`Hierarchy::flat`], or
/// [`Hierarchy::balanced`]. Immutable once built.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    name: String,
    /// Bottom-up level names; the last entry is always `ALL`.
    level_names: Vec<String>,
    values: Vec<ValueData>,
    /// Values of each level in within-level domain order (DFS order, so
    /// the `anc` monotonicity condition holds by construction).
    by_level: Vec<Vec<ValueId>>,
    by_name: HashMap<String, ValueId>,
}

impl Hierarchy {
    pub(crate) fn from_parts(
        name: String,
        level_names: Vec<String>,
        values: Vec<ValueData>,
        by_level: Vec<Vec<ValueId>>,
        by_name: HashMap<String, ValueId>,
    ) -> Self {
        Self {
            name,
            level_names,
            values,
            by_level,
            by_name,
        }
    }

    /// Name of the context parameter this hierarchy models.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels *including* `ALL` (`m` in the paper).
    #[inline]
    pub fn level_count(&self) -> usize {
        self.level_names.len()
    }

    /// The detailed level `L1`.
    #[inline]
    pub fn detailed_level(&self) -> LevelId {
        LevelId::DETAILED
    }

    /// The `ALL` level (upper bound of the lattice).
    #[inline]
    pub fn all_level(&self) -> LevelId {
        LevelId((self.level_names.len() - 1) as u8)
    }

    /// The single value `all` of the `ALL` level.
    #[inline]
    pub fn all_value(&self) -> ValueId {
        self.by_level[self.all_level().index()][0]
    }

    /// Name of a level.
    pub fn level_name(&self, level: LevelId) -> &str {
        &self.level_names[level.index()]
    }

    /// Find a level by name (case-sensitive). `"ALL"` resolves to the top.
    pub fn level_by_name(&self, name: &str) -> Option<LevelId> {
        self.level_names
            .iter()
            .position(|l| l == name)
            .map(|i| LevelId(i as u8))
    }

    /// Total number of interned values = `|edom(C)|`, the size of the
    /// extended domain of Section 3.1.
    #[inline]
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Alias for [`Self::value_count`], using the paper's notation.
    #[inline]
    pub fn edom_size(&self) -> usize {
        self.values.len()
    }

    /// Size of `dom_{Lj}(C)`, the domain of one level.
    #[inline]
    pub fn domain_size(&self, level: LevelId) -> usize {
        self.by_level[level.index()].len()
    }

    /// The domain of a level in within-level order.
    #[inline]
    pub fn domain(&self, level: LevelId) -> &[ValueId] {
        &self.by_level[level.index()]
    }

    /// Iterate over the extended domain: every value of every level,
    /// bottom-up.
    pub fn edom(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.by_level.iter().flat_map(|vs| vs.iter().copied())
    }

    /// Name of a value.
    #[inline]
    pub fn value_name(&self, v: ValueId) -> &str {
        &self.values[v.index()].name
    }

    /// Look a value up by name, across all levels.
    pub fn lookup(&self, name: &str) -> Option<ValueId> {
        self.by_name.get(name).copied()
    }

    /// The level a value belongs to.
    #[inline]
    pub fn level_of(&self, v: ValueId) -> LevelId {
        self.values[v.index()].level
    }

    /// Position of a value within its level's domain order. Within-level
    /// order is the order the `anc` monotonicity condition refers to and
    /// the order range descriptors (`C ∈ [v1, vm]`) are expanded in.
    #[inline]
    pub fn pos_in_level(&self, v: ValueId) -> u32 {
        self.values[v.index()].pos_in_level
    }

    /// The value at a given position of a level's domain.
    #[inline]
    pub fn value_at(&self, level: LevelId, pos: u32) -> ValueId {
        self.by_level[level.index()][pos as usize]
    }

    /// Direct parent (ancestor at the next level up), `None` for `all`.
    #[inline]
    pub fn parent(&self, v: ValueId) -> Option<ValueId> {
        self.values[v.index()].parent
    }

    /// Direct children (descendants at the next level down).
    #[inline]
    pub fn children(&self, v: ValueId) -> &[ValueId] {
        &self.values[v.index()].children
    }

    /// `anc_{level_of(v)}^{level}(v)`: the ancestor of `v` at `level`.
    ///
    /// Returns `v` itself when `level == level_of(v)` (the paper's
    /// `L1 ¹ L2` reflexive reading) and `None` when `level` is *below*
    /// the value's own level — `anc` only maps upward.
    pub fn anc(&self, v: ValueId, level: LevelId) -> Option<ValueId> {
        let own = self.level_of(v);
        if level < own {
            return None;
        }
        let mut cur = v;
        for _ in own.index()..level.index() {
            cur = self.values[cur.index()].parent?;
        }
        Some(cur)
    }

    /// `desc_{level_of(v)}^{level}(v)`: all descendants of `v` at `level`
    /// (inverse of `anc`, Definition in Section 3.1). Returns `[v]` when
    /// `level == level_of(v)` and an empty vector when `level` is above.
    pub fn desc(&self, v: ValueId, level: LevelId) -> Vec<ValueId> {
        let own = self.level_of(v);
        if level > own {
            return Vec::new();
        }
        if level == own {
            return vec![v];
        }
        if level == LevelId::DETAILED {
            // Fast path: leaves are contiguous in leaf-position order.
            return self.values[v.index()]
                .leaf_range
                .clone()
                .map(|pos| self.value_at(LevelId::DETAILED, pos))
                .collect();
        }
        let mut frontier = vec![v];
        for _ in level.index()..own.index() {
            frontier = frontier
                .iter()
                .flat_map(|&u| self.values[u.index()].children.iter().copied())
                .collect();
        }
        frontier
    }

    /// Number of descendants of `v` at the detailed level, O(1).
    #[inline]
    pub fn leaf_count(&self, v: ValueId) -> u32 {
        let r = &self.values[v.index()].leaf_range;
        r.end - r.start
    }

    /// Contiguous detailed-level position range spanned by `v`.
    #[inline]
    pub fn leaf_range(&self, v: ValueId) -> Range<u32> {
        self.values[v.index()].leaf_range.clone()
    }

    /// True iff `a` is `b` or an ancestor of `b` (at any level). O(1):
    /// leaf ranges nest along ancestor chains.
    pub fn is_ancestor_or_self(&self, a: ValueId, b: ValueId) -> bool {
        if a == b {
            return true;
        }
        if self.level_of(a) <= self.level_of(b) {
            return false;
        }
        let ra = self.leaf_range(a);
        let rb = self.leaf_range(b);
        ra.start <= rb.start && rb.end <= ra.end
    }

    /// Minimum-path distance between two levels (Definition 14). For the
    /// chain lattices of the paper this is the absolute index difference;
    /// it is always finite within one hierarchy.
    #[inline]
    pub fn level_dist(&self, a: LevelId, b: LevelId) -> u32 {
        a.0.abs_diff(b.0) as u32
    }

    /// The Jaccard distance of two values of this hierarchy
    /// (Definition 16):
    /// `1 − |desc_L1(v1) ∩ desc_L1(v2)| / |desc_L1(v1) ∪ desc_L1(v2)|`.
    ///
    /// O(1) thanks to contiguous leaf ranges.
    pub fn jaccard(&self, a: ValueId, b: ValueId) -> f64 {
        let ra = self.leaf_range(a);
        let rb = self.leaf_range(b);
        let inter = u32::min(ra.end, rb.end).saturating_sub(u32::max(ra.start, rb.start)) as f64;
        let union = (ra.end - ra.start + (rb.end - rb.start)) as f64 - inter;
        if union == 0.0 {
            // Both empty descendant sets: identical values by convention.
            return 0.0;
        }
        1.0 - inter / union
    }

    /// Expand a range descriptor `[from, to]` over the within-level
    /// order. Both endpoints must be at the same level; returns the
    /// closed range of values (empty if `from` is after `to`).
    pub fn range_values(&self, from: ValueId, to: ValueId) -> Option<Vec<ValueId>> {
        let level = self.level_of(from);
        if self.level_of(to) != level {
            return None;
        }
        let (a, b) = (self.pos_in_level(from), self.pos_in_level(to));
        if a > b {
            return Some(Vec::new());
        }
        Some((a..=b).map(|p| self.value_at(level, p)).collect())
    }

    /// Verify the three conditions on the `anc` family (mapping,
    /// composition, monotonicity). Builders establish these by
    /// construction; this is an O(values × levels) audit used by tests
    /// and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for lvl in 0..self.level_count() - 1 {
            let level = LevelId(lvl as u8);
            let upper = LevelId(lvl as u8 + 1);
            let mut last: Option<u32> = None;
            for &v in self.domain(level) {
                // Condition 1: total mapping to the next level.
                let Some(p) = self.anc(v, upper) else {
                    return Err(format!(
                        "{} has no ancestor at {}",
                        self.value_name(v),
                        upper
                    ));
                };
                // Condition 3: monotonicity wrt within-level order.
                let pp = self.pos_in_level(p);
                if let Some(prev) = last {
                    if pp < prev {
                        return Err(format!(
                            "anc not monotone at level {level}: {} maps backwards",
                            self.value_name(v)
                        ));
                    }
                }
                last = Some(pp);
                // Condition 2: composition (anc to ALL via one step at a
                // time equals anc directly; trivially true for chains but
                // audited anyway).
                let via = self.anc(p, self.all_level());
                let direct = self.anc(v, self.all_level());
                if via != direct {
                    return Err(format!(
                        "anc composition violated at {}",
                        self.value_name(v)
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HierarchyBuilder;

    fn location() -> Hierarchy {
        let mut b = HierarchyBuilder::new("location", &["Region", "City", "Country"]);
        b.add("Country", "Greece", None).unwrap();
        b.add("City", "Athens", Some("Greece")).unwrap();
        b.add("City", "Ioannina", Some("Greece")).unwrap();
        b.add("Region", "Plaka", Some("Athens")).unwrap();
        b.add("Region", "Kifisia", Some("Athens")).unwrap();
        b.add("Region", "Perama", Some("Ioannina")).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn levels_and_all() {
        let h = location();
        assert_eq!(h.level_count(), 4);
        assert_eq!(h.level_name(h.all_level()), "ALL");
        assert_eq!(h.value_name(h.all_value()), ALL_VALUE_NAME);
        assert_eq!(h.level_by_name("City"), Some(LevelId(1)));
        assert_eq!(h.level_by_name("ALL"), Some(LevelId(3)));
        assert_eq!(h.level_by_name("nope"), None);
    }

    #[test]
    fn anc_follows_paper_example() {
        // anc^City_Region(Plaka) = Athens
        let h = location();
        let plaka = h.lookup("Plaka").unwrap();
        let athens = h.lookup("Athens").unwrap();
        let city = h.level_by_name("City").unwrap();
        assert_eq!(h.anc(plaka, city), Some(athens));
        // Reflexive at own level, None below own level.
        assert_eq!(h.anc(athens, city), Some(athens));
        assert_eq!(h.anc(athens, LevelId::DETAILED), None);
        // Everything maps to `all` at ALL.
        assert_eq!(h.anc(plaka, h.all_level()), Some(h.all_value()));
    }

    #[test]
    fn desc_follows_paper_example() {
        // desc^City_Region(Athens) = {Plaka, Kifisia};
        // desc^Country_City(Greece) = {Athens, Ioannina}
        let h = location();
        let athens = h.lookup("Athens").unwrap();
        let greece = h.lookup("Greece").unwrap();
        let names =
            |vs: Vec<ValueId>| -> Vec<&str> { vs.into_iter().map(|v| h.value_name(v)).collect() };
        assert_eq!(names(h.desc(athens, LevelId(0))), vec!["Plaka", "Kifisia"]);
        assert_eq!(
            names(h.desc(greece, LevelId(1))),
            vec!["Athens", "Ioannina"]
        );
        // desc above the value's level is empty; at the level, identity.
        assert!(h.desc(athens, LevelId(2)).is_empty());
        assert_eq!(h.desc(athens, LevelId(1)), vec![athens]);
        // desc from `all` at detailed level covers the whole domain.
        assert_eq!(h.desc(h.all_value(), LevelId(0)).len(), 3);
    }

    #[test]
    fn ancestor_or_self_is_consistent_with_anc() {
        let h = location();
        for a in h.edom() {
            for b in h.edom() {
                let expected = h.anc(b, h.level_of(a)).map(|x| x == a).unwrap_or(false);
                assert_eq!(h.is_ancestor_or_self(a, b), expected, "{:?} {:?}", a, b);
            }
        }
    }

    #[test]
    fn jaccard_matches_definition() {
        let h = location();
        let plaka = h.lookup("Plaka").unwrap();
        let athens = h.lookup("Athens").unwrap();
        let ioannina = h.lookup("Ioannina").unwrap();
        let greece = h.lookup("Greece").unwrap();
        // desc(Plaka) = {Plaka}; desc(Athens) = {Plaka, Kifisia}.
        assert!((h.jaccard(plaka, athens) - 0.5).abs() < 1e-12);
        // Disjoint leaf sets → distance 1.
        assert!((h.jaccard(plaka, ioannina) - 1.0).abs() < 1e-12);
        // Identical → 0.
        assert_eq!(h.jaccard(greece, greece), 0.0);
        // Greece covers everything here, so jaccard(all, Greece) = 0.
        assert_eq!(h.jaccard(h.all_value(), greece), 0.0);
        // Symmetry.
        assert_eq!(h.jaccard(plaka, greece), h.jaccard(greece, plaka));
    }

    #[test]
    fn level_dist_is_abs_difference() {
        let h = location();
        assert_eq!(h.level_dist(LevelId(0), LevelId(3)), 3);
        assert_eq!(h.level_dist(LevelId(2), LevelId(1)), 1);
        assert_eq!(h.level_dist(LevelId(1), LevelId(1)), 0);
    }

    #[test]
    fn range_values_follow_within_level_order() {
        let h = location();
        let plaka = h.lookup("Plaka").unwrap();
        let perama = h.lookup("Perama").unwrap();
        let vals = h.range_values(plaka, perama).unwrap();
        assert_eq!(vals.len(), 3);
        // Reversed endpoints → empty.
        assert!(h.range_values(perama, plaka).unwrap().is_empty());
        // Cross-level range is rejected.
        let athens = h.lookup("Athens").unwrap();
        assert!(h.range_values(plaka, athens).is_none());
    }

    #[test]
    fn validate_accepts_well_formed() {
        location().validate().unwrap();
    }

    #[test]
    fn lookup_is_total_over_names() {
        let h = location();
        for v in h.edom() {
            assert_eq!(h.lookup(h.value_name(v)), Some(v));
        }
        assert_eq!(h.lookup("Sparta"), None);
    }
}
