use std::collections::HashMap;

use crate::error::HierarchyError;
use crate::hierarchy::{Hierarchy, LevelId, ValueData, ValueId, ALL_LEVEL_NAME, ALL_VALUE_NAME};

#[derive(Debug, Clone)]
struct RawValue {
    name: String,
    level: usize,
    parent: Option<String>,
}

/// Incremental builder for a [`Hierarchy`].
///
/// Levels are declared bottom-up in [`HierarchyBuilder::new`] (the `ALL`
/// level is appended automatically); values are then attached to levels
/// with [`HierarchyBuilder::add`]. Values may be added in any order —
/// parent links are resolved at [`HierarchyBuilder::build`] time, which
/// also assigns the depth-first within-level order that makes the `anc`
/// monotonicity condition hold by construction.
#[derive(Debug, Clone)]
pub struct HierarchyBuilder {
    name: String,
    level_names: Vec<String>,
    values: Vec<RawValue>,
    seen: HashMap<String, usize>,
    error: Option<HierarchyError>,
}

impl HierarchyBuilder {
    /// Start a hierarchy named `name` with the given levels, listed
    /// bottom-up (detailed level first). Do not include `ALL`.
    pub fn new(name: &str, levels: &[&str]) -> Self {
        let mut error = None;
        if levels.is_empty() {
            error = Some(HierarchyError::NoLevels);
        } else if levels.len() > 250 {
            error = Some(HierarchyError::TooManyLevels(levels.len()));
        }
        let mut level_names: Vec<String> = Vec::with_capacity(levels.len() + 1);
        for &l in levels {
            if l == ALL_LEVEL_NAME {
                error.get_or_insert(HierarchyError::ReservedName(l.to_string()));
            }
            if level_names.iter().any(|x| x.as_str() == l) {
                error.get_or_insert(HierarchyError::DuplicateLevel(l.to_string()));
            }
            level_names.push(l.to_string());
        }
        level_names.push(ALL_LEVEL_NAME.to_string());
        Self {
            name: name.to_string(),
            level_names,
            values: Vec::new(),
            seen: HashMap::new(),
            error,
        }
    }

    /// Add a value at `level`. `parent` names the value's ancestor at the
    /// next level up; it is mandatory except at the top user level
    /// (whose values implicitly map to `all`).
    pub fn add(
        &mut self,
        level: &str,
        value: &str,
        parent: Option<&str>,
    ) -> Result<&mut Self, HierarchyError> {
        let li = self
            .level_names
            .iter()
            .position(|l| l == level)
            .filter(|&i| i + 1 < self.level_names.len())
            .ok_or_else(|| HierarchyError::UnknownLevel(level.to_string()))?;
        if value == ALL_VALUE_NAME {
            return Err(HierarchyError::ReservedName(value.to_string()));
        }
        if self.seen.contains_key(value) {
            return Err(HierarchyError::DuplicateValue(value.to_string()));
        }
        let top_user_level = self.level_names.len() - 2;
        if li < top_user_level && parent.is_none() {
            return Err(HierarchyError::MissingParent(value.to_string()));
        }
        self.seen.insert(value.to_string(), li);
        self.values.push(RawValue {
            name: value.to_string(),
            level: li,
            parent: parent.map(str::to_string),
        });
        Ok(self)
    }

    /// Add many detailed-level values under one parent.
    pub fn add_leaves(
        &mut self,
        parent: &str,
        leaves: &[&str],
    ) -> Result<&mut Self, HierarchyError> {
        let detailed = self.level_names[0].clone();
        for &leaf in leaves {
            self.add(&detailed, leaf, Some(parent))?;
        }
        Ok(self)
    }

    /// Resolve parent links, order values, and produce the [`Hierarchy`].
    pub fn build(self) -> Result<Hierarchy, HierarchyError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let n_levels = self.level_names.len();
        let top_user_level = n_levels - 2;

        // Group raw values per level, keeping insertion order (which
        // determines sibling order, and thus the within-level order).
        let mut per_level: Vec<Vec<usize>> = vec![Vec::new(); n_levels];
        for (i, rv) in self.values.iter().enumerate() {
            per_level[rv.level].push(i);
        }
        for (li, vs) in per_level.iter().enumerate().take(n_levels - 1) {
            if vs.is_empty() {
                return Err(HierarchyError::EmptyLevel(self.level_names[li].clone()));
            }
        }

        // Resolve parents to raw indices.
        let raw_index: HashMap<&str, usize> = self
            .values
            .iter()
            .enumerate()
            .map(|(i, rv)| (rv.name.as_str(), i))
            .collect();
        let mut children_of: Vec<Vec<usize>> = vec![Vec::new(); self.values.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, rv) in self.values.iter().enumerate() {
            match (&rv.parent, rv.level == top_user_level) {
                (None, true) => roots.push(i),
                (None, false) => return Err(HierarchyError::MissingParent(rv.name.clone())),
                (Some(p), at_top) => {
                    if at_top && p == ALL_VALUE_NAME {
                        roots.push(i);
                        continue;
                    }
                    let &pi =
                        raw_index
                            .get(p.as_str())
                            .ok_or_else(|| HierarchyError::UnknownParent {
                                value: rv.name.clone(),
                                parent: p.clone(),
                            })?;
                    if self.values[pi].level != rv.level + 1 {
                        return Err(HierarchyError::WrongParentLevel {
                            value: rv.name.clone(),
                            parent: p.clone(),
                            expected_level: self.level_names[rv.level + 1].clone(),
                            actual_level: self.level_names[self.values[pi].level].clone(),
                        });
                    }
                    children_of[pi].push(i);
                }
            }
        }

        // Reject internal values with no path to the detailed level (they
        // would make `desc` partial and the leaf-range trick unsound).
        for (i, rv) in self.values.iter().enumerate() {
            if rv.level > 0 && children_of[i].is_empty() {
                return Err(HierarchyError::ChildlessInternalValue(rv.name.clone()));
            }
        }

        // Depth-first walk from the (implicit) `all` root through the
        // top-level roots, assigning ids and within-level positions in
        // discovery order. This yields contiguous leaf ranges per value
        // and a monotone `anc`.
        let mut values: Vec<ValueData> = Vec::with_capacity(self.values.len() + 1);
        let mut by_level: Vec<Vec<ValueId>> = vec![Vec::new(); n_levels];
        let mut id_of_raw: Vec<Option<ValueId>> = vec![None; self.values.len()];

        let all_id = ValueId(0);
        values.push(ValueData {
            name: ALL_VALUE_NAME.to_string(),
            level: LevelId(top_user_level as u8 + 1),
            parent: None,
            children: Vec::new(),
            leaf_range: 0..0,
            pos_in_level: 0,
        });
        by_level[n_levels - 1].push(all_id);

        // Iterative DFS. Stack entries: (raw index, parent ValueId).
        let mut stack: Vec<(usize, ValueId)> = roots.iter().rev().map(|&r| (r, all_id)).collect();
        let mut next_leaf_pos: u32 = 0;
        while let Some((ri, parent_id)) = stack.pop() {
            let rv = &self.values[ri];
            let id = ValueId(values.len() as u32);
            id_of_raw[ri] = Some(id);
            let pos = by_level[rv.level].len() as u32;
            by_level[rv.level].push(id);
            let leaf_range = if rv.level == 0 {
                let p = next_leaf_pos;
                next_leaf_pos += 1;
                p..p + 1
            } else {
                0..0 // fixed up bottom-up below
            };
            values.push(ValueData {
                name: rv.name.clone(),
                level: LevelId(rv.level as u8),
                parent: Some(parent_id),
                children: Vec::new(),
                leaf_range,
                pos_in_level: pos,
            });
            values[parent_id.index()].children.push(id);
            for &ci in children_of[ri].iter().rev() {
                stack.push((ci, id));
            }
        }

        // Some raw values may be unreachable from the roots (orphan
        // subtrees whose ancestors never reach the top level). The parent
        // resolution above guarantees each value has a parent one level
        // up, and induction from the top level guarantees reachability,
        // so every value must have an id by now.
        debug_assert!(id_of_raw.iter().all(Option::is_some));

        // Fix leaf ranges bottom-up (children were pushed in DFS order,
        // so each internal node spans the union of its children).
        fn fix_range(values: &mut Vec<ValueData>, id: ValueId) -> std::ops::Range<u32> {
            if values[id.index()].children.is_empty() {
                return values[id.index()].leaf_range.clone();
            }
            let children = values[id.index()].children.clone();
            let mut start = u32::MAX;
            let mut end = 0u32;
            for c in children {
                let r = fix_range(values, c);
                start = start.min(r.start);
                end = end.max(r.end);
            }
            values[id.index()].leaf_range = start..end;
            start..end
        }
        fix_range(&mut values, all_id);

        let by_name: HashMap<String, ValueId> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.name.clone(), ValueId(i as u32)))
            .collect();

        let h = Hierarchy::from_parts(self.name, self.level_names, values, by_level, by_name);
        debug_assert!(h.validate().is_ok(), "builder produced invalid hierarchy");
        Ok(h)
    }
}

impl Hierarchy {
    /// A two-level hierarchy (detailed + `ALL`) over the given values —
    /// the degenerate case used when a context parameter has no
    /// aggregation structure.
    pub fn flat(name: &str, values: &[&str]) -> Result<Hierarchy, HierarchyError> {
        let mut b = HierarchyBuilder::new(name, &[&format!("{name}_detail")]);
        for &v in values {
            b.add(&format!("{name}_detail"), v, None)?;
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_levels_and_duplicates() {
        assert_eq!(
            HierarchyBuilder::new("x", &[]).build().unwrap_err(),
            HierarchyError::NoLevels
        );
        let b = HierarchyBuilder::new("x", &["a", "a"]);
        assert_eq!(
            b.build().unwrap_err(),
            HierarchyError::DuplicateLevel("a".into())
        );
        let b = HierarchyBuilder::new("x", &["ALL"]);
        assert_eq!(
            b.build().unwrap_err(),
            HierarchyError::ReservedName("ALL".into())
        );
    }

    #[test]
    fn rejects_bad_values() {
        let mut b = HierarchyBuilder::new("x", &["lo", "hi"]);
        assert!(matches!(
            b.add("nope", "v", None),
            Err(HierarchyError::UnknownLevel(_))
        ));
        assert!(matches!(
            b.add("lo", "all", None),
            Err(HierarchyError::ReservedName(_))
        ));
        assert!(matches!(
            b.add("lo", "v", None),
            Err(HierarchyError::MissingParent(_))
        ));
        b.add("hi", "top", None).unwrap();
        b.add("lo", "v", Some("top")).unwrap();
        assert!(matches!(
            b.add("lo", "v", Some("top")),
            Err(HierarchyError::DuplicateValue(_))
        ));
        // "ALL" is a valid target for lookups but not for `add`.
        assert!(matches!(
            b.add("ALL", "w", None),
            Err(HierarchyError::UnknownLevel(_))
        ));
    }

    #[test]
    fn rejects_unknown_and_wrong_level_parents() {
        let mut b = HierarchyBuilder::new("x", &["lo", "mid", "hi"]);
        b.add("hi", "top", None).unwrap();
        b.add("mid", "m", Some("top")).unwrap();
        b.add("lo", "bad", Some("top")).unwrap(); // parent two levels up
        assert!(matches!(
            b.build(),
            Err(HierarchyError::WrongParentLevel { .. })
        ));

        let mut b = HierarchyBuilder::new("x", &["lo", "hi"]);
        b.add("hi", "top", None).unwrap();
        b.add("lo", "v", Some("ghost")).unwrap();
        assert!(matches!(
            b.build(),
            Err(HierarchyError::UnknownParent { .. })
        ));
    }

    #[test]
    fn rejects_childless_internal_value() {
        let mut b = HierarchyBuilder::new("x", &["lo", "hi"]);
        b.add("hi", "lonely", None).unwrap();
        b.add("hi", "top", None).unwrap();
        b.add("lo", "v", Some("top")).unwrap();
        assert!(matches!(
            b.build(),
            Err(HierarchyError::ChildlessInternalValue(_))
        ));
    }

    #[test]
    fn rejects_empty_level() {
        let mut b = HierarchyBuilder::new("x", &["lo", "mid", "hi"]);
        b.add("hi", "top", None).unwrap();
        // mid declared but never populated; lo can't exist without mid.
        assert!(matches!(b.build(), Err(HierarchyError::EmptyLevel(_))));
    }

    #[test]
    fn top_level_parent_all_is_accepted() {
        let mut b = HierarchyBuilder::new("x", &["lo", "hi"]);
        b.add("hi", "top", Some("all")).unwrap();
        b.add("lo", "v", Some("top")).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.parent(h.lookup("top").unwrap()), Some(h.all_value()));
    }

    #[test]
    fn flat_builds_two_level_hierarchy() {
        let h = Hierarchy::flat("taste", &["mainstream", "out_of_beaten_track"]).unwrap();
        assert_eq!(h.level_count(), 2);
        assert_eq!(h.domain_size(h.detailed_level()), 2);
        let m = h.lookup("mainstream").unwrap();
        assert_eq!(h.parent(m), Some(h.all_value()));
        h.validate().unwrap();
    }

    #[test]
    fn leaf_ranges_are_contiguous_and_nested() {
        let mut b = HierarchyBuilder::new("loc", &["Region", "City", "Country"]);
        b.add("Country", "Greece", None).unwrap();
        b.add("Country", "Italy", None).unwrap();
        b.add("City", "Athens", Some("Greece")).unwrap();
        b.add("City", "Rome", Some("Italy")).unwrap();
        b.add("City", "Ioannina", Some("Greece")).unwrap();
        b.add_leaves("Athens", &["Plaka", "Kifisia"]).unwrap();
        b.add_leaves("Rome", &["Trastevere"]).unwrap();
        b.add_leaves("Ioannina", &["Perama"]).unwrap();
        let h = b.build().unwrap();
        h.validate().unwrap();
        let greece = h.lookup("Greece").unwrap();
        // Greece spans Plaka, Kifisia, Perama = 3 leaves, contiguous even
        // though Rome's subtree was declared in between.
        assert_eq!(h.leaf_count(greece), 3);
        let italy = h.lookup("Italy").unwrap();
        assert_eq!(h.leaf_count(italy), 1);
        assert_eq!(h.leaf_count(h.all_value()), 4);
        // Nesting.
        let athens = h.lookup("Athens").unwrap();
        let ra = h.leaf_range(athens);
        let rg = h.leaf_range(greece);
        assert!(rg.start <= ra.start && ra.end <= rg.end);
    }
}
