#![warn(missing_docs)]
//! Multidimensional attribute hierarchies for contextual preferences.
//!
//! This crate implements the hierarchy model of Section 3.1 of
//! *"Adding Context to Preferences"* (Stefanidis, Pitoura, Vassiliadis,
//! ICDE 2007): every context parameter participates in a lattice of
//! levels `L1 ≺ L2 ≺ … ≺ ALL`, where `L1` is the *detailed* level and
//! `ALL` groups every value into the single value `all`. Values of
//! adjacent levels are related through the family of `anc` (ancestor)
//! functions and their inverses `desc` (descendants), which must satisfy
//! three conditions (Vassiliadis & Skiadopoulos, CAiSE 2000):
//!
//! 1. **mapping** — `anc` maps each value of the lower level to a value
//!    of the upper level,
//! 2. **composition** — `anc_{L1}^{L3} = anc_{L2}^{L3} ∘ anc_{L1}^{L2}`,
//! 3. **monotonicity** — `x < y ⇒ anc(x) ≤ anc(y)` with respect to the
//!    within-level value order.
//!
//! [`Hierarchy`] stores values interned as [`ValueId`]s with the leaves
//! (detailed-level values) laid out in depth-first order, so that the
//! descendants of any value at the detailed level form a contiguous
//! range. This makes the two operations that context resolution is built
//! on — the `covers` test and the Jaccard distance of Definition 16 —
//! O(1) range computations instead of set intersections.
//!
//! # Example
//!
//! ```
//! use ctxpref_hierarchy::HierarchyBuilder;
//!
//! let mut b = HierarchyBuilder::new("location", &["Region", "City", "Country"]);
//! b.add("Country", "Greece", None).unwrap();
//! b.add("City", "Athens", Some("Greece")).unwrap();
//! b.add("City", "Ioannina", Some("Greece")).unwrap();
//! b.add("Region", "Plaka", Some("Athens")).unwrap();
//! b.add("Region", "Kifisia", Some("Athens")).unwrap();
//! b.add("Region", "Perama", Some("Ioannina")).unwrap();
//! let h = b.build().unwrap();
//!
//! let plaka = h.lookup("Plaka").unwrap();
//! let athens = h.lookup("Athens").unwrap();
//! let city = h.level_by_name("City").unwrap();
//! assert_eq!(h.anc(plaka, city), Some(athens));
//! assert_eq!(h.desc(athens, h.detailed_level()).len(), 2);
//! ```

mod builder;
mod error;
mod generate;
mod hierarchy;
pub mod lattice;

pub use builder::HierarchyBuilder;
pub use error::HierarchyError;
pub use hierarchy::{Hierarchy, LevelId, ValueId, ALL_VALUE_NAME};
pub use lattice::{LatticeBuilder, LatticeError, LatticeHierarchy};
