use std::error::Error;
use std::fmt;

/// Errors produced while constructing a [`crate::Hierarchy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// No levels were supplied to the builder.
    NoLevels,
    /// More than 250 levels were supplied (levels are indexed by `u8`,
    /// and `ALL` is appended automatically).
    TooManyLevels(usize),
    /// Two levels share the same name.
    DuplicateLevel(String),
    /// The reserved level name `ALL` or value name `all` was used.
    ReservedName(String),
    /// A value name was inserted twice (value names are unique across the
    /// whole hierarchy so that textual descriptors are unambiguous).
    DuplicateValue(String),
    /// `add` referenced a level name that was not declared in `new`.
    UnknownLevel(String),
    /// A parent value name that does not exist was referenced.
    UnknownParent {
        /// The value whose parent is missing.
        value: String,
        /// The unresolved parent name.
        parent: String,
    },
    /// The named parent exists but does not live exactly one level above
    /// the child.
    WrongParentLevel {
        /// The child value whose parent is misplaced.
        value: String,
        /// The misplaced parent value.
        parent: String,
        /// The level the parent was expected at.
        expected_level: String,
        /// The level the parent actually lives at.
        actual_level: String,
    },
    /// A value below the top user level was added without a parent.
    MissingParent(String),
    /// A declared level ended up with no values.
    EmptyLevel(String),
    /// An internal (non-detailed) value has no descendants at the
    /// detailed level, which would make `desc` partial.
    ChildlessInternalValue(String),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoLevels => write!(f, "a hierarchy needs at least one level below ALL"),
            Self::TooManyLevels(n) => write!(f, "too many levels: {n} (max 250)"),
            Self::DuplicateLevel(l) => write!(f, "duplicate level name {l:?}"),
            Self::ReservedName(n) => {
                write!(
                    f,
                    "{n:?} is reserved for the automatically added top of the lattice"
                )
            }
            Self::DuplicateValue(v) => write!(f, "duplicate value name {v:?}"),
            Self::UnknownLevel(l) => write!(f, "unknown level {l:?}"),
            Self::UnknownParent { value, parent } => {
                write!(f, "value {value:?} references unknown parent {parent:?}")
            }
            Self::WrongParentLevel {
                value,
                parent,
                expected_level,
                actual_level,
            } => write!(
                f,
                "value {value:?} needs a parent at level {expected_level:?}, \
                 but {parent:?} is at level {actual_level:?}"
            ),
            Self::MissingParent(v) => {
                write!(f, "value {v:?} is below the top level and needs a parent")
            }
            Self::EmptyLevel(l) => write!(f, "level {l:?} has no values"),
            Self::ChildlessInternalValue(v) => {
                write!(
                    f,
                    "internal value {v:?} has no descendants at the detailed level"
                )
            }
        }
    }
}

impl Error for HierarchyError {}
