//! Property-based tests for the hierarchy invariants the paper's proofs
//! rely on (the three `anc` conditions and the Jaccard consistency of
//! Property 1).

use ctxpref_hierarchy::{Hierarchy, LevelId, ValueId};
use proptest::prelude::*;

/// Strategy: shapes of balanced hierarchies with 1–3 user levels and
/// non-increasing sizes.
fn shape() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        (1usize..=60).prop_map(|a| vec![a]),
        (1usize..=20, 1usize..=6).prop_map(|(b, a)| vec![a * b, a]),
        (1usize..=10, 1usize..=5, 1usize..=4).prop_map(|(c, b, a)| vec![a * b * c, a * b, a]),
    ]
}

proptest! {
    #[test]
    fn validate_holds_for_all_balanced_shapes(sizes in shape()) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        prop_assert!(h.validate().is_ok());
    }

    #[test]
    fn anc_is_total_and_composes(sizes in shape()) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        let all = h.all_level();
        for v in h.edom() {
            let own = h.level_of(v);
            // Totality upward, None below.
            for l in 0..h.level_count() {
                let l = LevelId(l as u8);
                let a = h.anc(v, l);
                prop_assert_eq!(a.is_some(), l >= own);
            }
            // Composition: stepping one level at a time equals jumping.
            let mut step = v;
            for l in own.index()..all.index() {
                step = h.anc(step, LevelId(l as u8 + 1)).unwrap();
                prop_assert_eq!(Some(step), h.anc(v, LevelId(l as u8 + 1)));
            }
            prop_assert_eq!(step, h.all_value());
        }
    }

    #[test]
    fn anc_is_monotone(sizes in shape()) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        for lvl in 0..h.level_count() - 1 {
            let level = LevelId(lvl as u8);
            let upper = LevelId(lvl as u8 + 1);
            let dom = h.domain(level);
            for w in dom.windows(2) {
                let (x, y) = (w[0], w[1]);
                let ax = h.pos_in_level(h.anc(x, upper).unwrap());
                let ay = h.pos_in_level(h.anc(y, upper).unwrap());
                prop_assert!(ax <= ay, "anc not monotone at {level}");
            }
        }
    }

    #[test]
    fn desc_inverts_anc(sizes in shape()) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        for v in h.edom() {
            let own = h.level_of(v);
            for l in 0..=own.index() {
                let l = LevelId(l as u8);
                let ds = h.desc(v, l);
                prop_assert!(!ds.is_empty());
                for d in &ds {
                    prop_assert_eq!(h.anc(*d, own), Some(v));
                }
                // Completeness: every value at l whose ancestor is v is in ds.
                let count = h
                    .domain(l)
                    .iter()
                    .filter(|&&x| h.anc(x, own) == Some(v))
                    .count();
                prop_assert_eq!(count, ds.len());
            }
        }
    }

    #[test]
    fn leaf_count_matches_desc(sizes in shape()) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        for v in h.edom() {
            prop_assert_eq!(
                h.leaf_count(v) as usize,
                h.desc(v, LevelId::DETAILED).len()
            );
        }
    }

    /// Property 1 of the paper: along an ancestor chain v1 → v2 → v3
    /// (levels strictly increasing), distJ(v3, v1) ≥ distJ(v2, v1).
    #[test]
    fn jaccard_grows_along_ancestor_chains(sizes in shape(), leaf_pick in 0usize..1000) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        let dom = h.domain(LevelId::DETAILED);
        let v1 = dom[leaf_pick % dom.len()];
        let mut chain: Vec<ValueId> = Vec::new();
        let mut cur = v1;
        while let Some(p) = h.parent(cur) {
            chain.push(p);
            cur = p;
        }
        let mut last = h.jaccard(v1, v1);
        prop_assert_eq!(last, 0.0);
        for a in chain {
            let d = h.jaccard(a, v1);
            prop_assert!(d + 1e-12 >= last, "jaccard decreased along chain");
            prop_assert!((0.0..=1.0).contains(&d));
            last = d;
        }
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded(sizes in shape(), i in 0usize..1000, j in 0usize..1000) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        let n = h.value_count();
        let a = ValueId((i % n) as u32);
        let b = ValueId((j % n) as u32);
        let dab = h.jaccard(a, b);
        let dba = h.jaccard(b, a);
        prop_assert!((dab - dba).abs() < 1e-15);
        prop_assert!((0.0..=1.0).contains(&dab));
        prop_assert_eq!(h.jaccard(a, a), 0.0);
    }

    /// Jaccard computed via O(1) leaf ranges must agree with the naive
    /// set-based Definition 16.
    #[test]
    fn jaccard_matches_naive_sets(sizes in shape(), i in 0usize..1000, j in 0usize..1000) {
        use std::collections::HashSet;
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        let n = h.value_count();
        let a = ValueId((i % n) as u32);
        let b = ValueId((j % n) as u32);
        let sa: HashSet<ValueId> = h.desc(a, LevelId::DETAILED).into_iter().collect();
        let sb: HashSet<ValueId> = h.desc(b, LevelId::DETAILED).into_iter().collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        let naive = 1.0 - inter / union;
        prop_assert!((h.jaccard(a, b) - naive).abs() < 1e-12);
    }

    #[test]
    fn is_ancestor_or_self_matches_anc(sizes in shape(), i in 0usize..1000, j in 0usize..1000) {
        let h = Hierarchy::balanced("p", &sizes).unwrap();
        let n = h.value_count();
        let a = ValueId((i % n) as u32);
        let b = ValueId((j % n) as u32);
        let expected = h.anc(b, h.level_of(a)) == Some(a);
        prop_assert_eq!(h.is_ancestor_or_self(a, b), expected);
    }
}
