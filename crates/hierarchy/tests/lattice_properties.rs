//! Property-based tests for general level lattices: random two-branch
//! lattices must satisfy the `anc` conditions, agree with their chain
//! decompositions, and keep Jaccard well-behaved across branches.

use ctxpref_hierarchy::lattice::LatticeBuilder;
use ctxpref_hierarchy::{LatticeHierarchy, LevelId};
use proptest::prelude::*;

/// Build a random two-branch diamond lattice:
/// `Base ≺ {A, B} ≺ ALL`, with `a_size`/`b_size` values per branch and
/// `base_size` detailed values whose branch parents are chosen by the
/// index vectors.
fn diamond(
    base_size: usize,
    a_size: usize,
    b_size: usize,
    a_of: &[usize],
    b_of: &[usize],
) -> LatticeHierarchy {
    let mut builder = LatticeBuilder::new("d");
    builder.level("Base", &["A", "B"]);
    builder.level("A", &[]);
    builder.level("B", &[]);
    for i in 0..a_size {
        builder.value("A", &format!("a{i}"), &[]);
    }
    for i in 0..b_size {
        builder.value("B", &format!("b{i}"), &[]);
    }
    for i in 0..base_size {
        builder.value(
            "Base",
            &format!("v{i}"),
            &[
                &format!("a{}", a_of[i] % a_size),
                &format!("b{}", b_of[i] % b_size),
            ],
        );
    }
    builder
        .build()
        .expect("no diamonds above branch levels → always commutes")
}

fn shape() -> impl Strategy<Value = (usize, usize, usize, Vec<usize>, Vec<usize>)> {
    (2usize..20, 1usize..5, 1usize..5).prop_flat_map(|(n, a, b)| {
        (
            Just(n),
            Just(a),
            Just(b),
            proptest::collection::vec(0usize..100, n..=n),
            proptest::collection::vec(0usize..100, n..=n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// anc is total upward, absent across branches, and the identity at
    /// the value's own level.
    #[test]
    fn anc_totality_and_reach((n, a, b, aof, bof) in shape()) {
        let l = diamond(n, a, b, &aof, &bof);
        let base = LevelId(0);
        let la = l.level_by_name("A").unwrap();
        let lb = l.level_by_name("B").unwrap();
        let all = l.level_by_name("ALL").unwrap();
        for &v in l.domain(base) {
            prop_assert_eq!(l.anc(v, base), Some(v));
            prop_assert!(l.anc(v, la).is_some());
            prop_assert!(l.anc(v, lb).is_some());
            prop_assert_eq!(l.anc(v, all), l.lookup("all"));
        }
        // Branch values cannot reach the sibling branch.
        for &v in l.domain(la) {
            prop_assert_eq!(l.anc(v, lb), None);
            prop_assert_eq!(l.anc(v, base), None);
        }
    }

    /// desc inverts anc on every level pair.
    #[test]
    fn desc_inverts_anc((n, a, b, aof, bof) in shape()) {
        let l = diamond(n, a, b, &aof, &bof);
        for lvl in 1..l.level_count() {
            let lvl = LevelId(lvl as u8);
            for &v in l.domain(lvl) {
                for d in l.desc(v, LevelId(0)) {
                    prop_assert_eq!(l.anc(d, lvl), Some(v));
                }
                prop_assert_eq!(
                    l.desc(v, LevelId(0)).len(),
                    l.leaf_set(v).len()
                );
            }
        }
    }

    /// Leaf sets partition the detailed level within each level.
    #[test]
    fn leaf_sets_partition((n, a, b, aof, bof) in shape()) {
        let l = diamond(n, a, b, &aof, &bof);
        for lvl in 1..l.level_count() {
            let lvl = LevelId(lvl as u8);
            let total: usize = l.domain(lvl).iter().map(|&v| l.leaf_set(v).len()).sum();
            prop_assert_eq!(total, n, "level {} must cover all leaves once", lvl.index());
        }
    }

    /// Jaccard is symmetric, bounded, zero on identity — including
    /// cross-branch pairs.
    #[test]
    fn jaccard_wellformed((n, a, b, aof, bof) in shape(), i in 0usize..200, j in 0usize..200) {
        let l = diamond(n, a, b, &aof, &bof);
        let all_values: Vec<_> = (0..l.edom_size() as u32)
            .map(ctxpref_hierarchy::ValueId)
            .collect();
        let x = all_values[i % all_values.len()];
        let y = all_values[j % all_values.len()];
        let dxy = l.jaccard(x, y);
        let dyx = l.jaccard(y, x);
        prop_assert!((dxy - dyx).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&dxy));
        prop_assert_eq!(l.jaccard(x, x), 0.0);
    }

    /// Chain decomposition agrees with the lattice: for every extracted
    /// chain and every value on it, `chain.anc == lattice.anc`.
    #[test]
    fn decomposition_agrees_with_lattice((n, a, b, aof, bof) in shape()) {
        let l = diamond(n, a, b, &aof, &bof);
        let chains = l.decompose().unwrap();
        prop_assert_eq!(chains.len(), 2);
        for chain in &chains {
            chain.validate().unwrap();
            prop_assert_eq!(chain.domain(chain.detailed_level()).len(), n);
            // Level 1 of the chain corresponds to one lattice branch.
            let branch = l.level_by_name(chain.level_name(LevelId(1))).unwrap();
            for &cv in chain.domain(chain.detailed_level()) {
                let name = chain.value_name(cv);
                let lv = l.lookup(name).unwrap();
                let chain_anc = chain.anc(cv, LevelId(1)).unwrap();
                let lattice_anc = l.anc(lv, branch).unwrap();
                prop_assert_eq!(chain.value_name(chain_anc), l.value_name(lattice_anc));
            }
        }
    }

    /// Level distances satisfy metric basics on the diamond.
    #[test]
    fn level_distance_metric((n, a, b, aof, bof) in shape()) {
        let l = diamond(n, a, b, &aof, &bof);
        let nl = l.level_count();
        for x in 0..nl {
            for y in 0..nl {
                let d = l.level_dist(LevelId(x as u8), LevelId(y as u8)).unwrap();
                let d2 = l.level_dist(LevelId(y as u8), LevelId(x as u8)).unwrap();
                prop_assert_eq!(d, d2);
                prop_assert_eq!(d == 0, x == y);
                // Triangle inequality.
                for z in 0..nl {
                    let dz = l.level_dist(LevelId(x as u8), LevelId(z as u8)).unwrap()
                        + l.level_dist(LevelId(z as u8), LevelId(y as u8)).unwrap();
                    prop_assert!(d <= dz);
                }
            }
        }
    }
}
